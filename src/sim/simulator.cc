#include "sim/simulator.hh"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <utility>

#include "arch/fastfwd.hh"
#include "check/checker.hh"
#include "common/logging.hh"
#include "obs/events.hh"
#include "slice/validator.hh"

namespace specslice::sim
{

namespace
{

/** SS_CHECK=1 forces the retirement checker on for every run. */
bool
checkForcedByEnv()
{
    static const bool forced = [] {
        const char *v = std::getenv("SS_CHECK");
        return v && *v != '\0' && std::strcmp(v, "0") != 0;
    }();
    return forced;
}

/** Worse-outcome ordering for region aggregation. */
int
outcomeRank(SimOutcome o)
{
    switch (o) {
      case SimOutcome::Completed:
        return 0;
      case SimOutcome::CycleLimit:
        return 1;
      case SimOutcome::Watchdog:
        return 2;
      case SimOutcome::CheckerDivergence:
        return 3;
      case SimOutcome::Fault:
        return 4;
    }
    return 5;
}

/** Fold one region's result into the running aggregate. */
void
accumulate(RunResult &agg, RunResult &&r)
{
    if (outcomeRank(r.outcome) > outcomeRank(agg.outcome)) {
        agg.outcome = r.outcome;
        agg.diagnosis = r.diagnosis;
    }
    agg.faultsInjected += r.faultsInjected;
    if (agg.faultSummary.empty())
        agg.faultSummary = std::move(r.faultSummary);
    agg.cycles += r.cycles;
    agg.mainRetired += r.mainRetired;
    agg.mainFetched += r.mainFetched;
    agg.mainFetchedWrongPath += r.mainFetchedWrongPath;
    agg.sliceFetched += r.sliceFetched;
    agg.sliceRetired += r.sliceRetired;
    agg.condBranches += r.condBranches;
    agg.mispredictions += r.mispredictions;
    agg.loads += r.loads;
    agg.l1dMissesMain += r.l1dMissesMain;
    agg.coveredMisses += r.coveredMisses;
    agg.slicePrefetches += r.slicePrefetches;
    agg.forks += r.forks;
    agg.forksSquashed += r.forksSquashed;
    agg.forksIgnored += r.forksIgnored;
    agg.predictionsGenerated += r.predictionsGenerated;
    agg.correlatorUsed += r.correlatorUsed;
    agg.correlatorWrong += r.correlatorWrong;
    agg.latePredictions += r.latePredictions;
    agg.lateReversals += r.lateReversals;
    agg.totalCycles += r.totalCycles;
    agg.wallWarmupSeconds += r.wallWarmupSeconds;
    agg.wallMeasureSeconds += r.wallMeasureSeconds;
    agg.detail.merge(r.detail);
    // Region series are concatenated; each region restarts index 0.
    agg.intervals.insert(agg.intervals.end(), r.intervals.begin(),
                         r.intervals.end());
    agg.checkedRetired += r.checkedRetired;
    if (r.checkDiverged && !agg.checkDiverged) {
        agg.checkDiverged = true;
        agg.checkReport = std::move(r.checkReport);
    }
    for (const auto &[pc, c] : r.profile.perPc) {
        auto &dst = agg.profile.perPc[pc];
        dst.branchExec += c.branchExec;
        dst.branchMispred += c.branchMispred;
        dst.loadExec += c.loadExec;
        dst.loadMiss += c.loadMiss;
        dst.storeExec += c.storeExec;
        dst.storeMiss += c.storeMiss;
    }
}

} // namespace

/** Architectural snapshot a timing region starts from. */
struct Simulator::RegionStart
{
    Addr pc = invalidAddr;
    arch::RegFile regs;
    arch::MemoryImage mem;
    std::vector<arch::BranchWarmthRecord> warmth;
    std::vector<arch::MemWarmthRecord> memWarmth;
    std::vector<Addr> instWarmth;
};

RunResult
Simulator::run(const Workload &wl, const RunOptions &opts,
               bool with_slices)
{
    if (sampled(opts))
        return runSampled(wl, opts, with_slices);
    return runOne(wl, opts, with_slices, nullptr);
}

RunResult
Simulator::runOne(const Workload &wl, const RunOptions &opts,
                  bool with_slices, const RegionStart *region)
{
    SS_ASSERT(wl.entry != invalidAddr, "workload has no entry point");

    // Region runs execute on a clone of the sampling stream's state;
    // plain runs build a fresh image from the workload initializer.
    arch::MemoryImage mem;
    Addr entry = wl.entry;
    if (region) {
        mem = region->mem.clone();
        entry = region->pc;
    } else if (wl.initMemory) {
        wl.initMemory(mem);
    }

    MachineConfig cfg = cfg_;
    cfg.slicesEnabled = with_slices;

    // Each run gets its own checker instance (parallel JobPool sweeps
    // therefore get one per job): a fresh reference memory image built
    // by the same initializer the timing core's image got, stepping
    // from the same entry PC — or, for a region run, from the same
    // architectural snapshot.
    RunOptions run_opts = opts;
    if (region) {
        run_opts.initialRegs = &region->regs;
        run_opts.branchWarmth =
            region->warmth.empty() ? nullptr : &region->warmth;
        run_opts.memWarmth =
            region->memWarmth.empty() ? nullptr : &region->memWarmth;
        run_opts.instWarmth =
            region->instWarmth.empty() ? nullptr
                                       : &region->instWarmth;
    }
    std::unique_ptr<check::RetireChecker> checker;
    bool want_check = opts.check || checkForcedByEnv();

    // The check.* injection sites are the fault-registry spelling of
    // the two legacy checker knobs: corrupt the Nth observed register
    // writeback / store before comparison (@nN, one-shot semantics).
    std::uint64_t inject_reg = opts.checkInjectRegFault;
    std::uint64_t inject_store = opts.checkInjectStoreFault;
    for (const fault::FaultSpec &spec : opts.faults.specs) {
        if (spec.site == fault::Site::CheckReg)
            inject_reg = spec.period;
        else if (spec.site == fault::Site::CheckStore)
            inject_store = spec.period;
    }

#ifndef SS_CHECK_DISABLED
    if (want_check) {
        check::RetireChecker::Config ccfg;
        ccfg.panicOnDivergence = opts.checkFatal &&
                                 inject_reg == 0 && inject_store == 0;
        ccfg.injectRegFaultAt = inject_reg;
        ccfg.injectStoreFaultAt = inject_store;
        if (region)
            checker = std::make_unique<check::RetireChecker>(
                wl.program, region->pc, region->regs,
                region->mem.clone(), ccfg);
        else
            checker = std::make_unique<check::RetireChecker>(
                wl.program, wl.entry, wl.initMemory, ccfg);
        run_opts.checker = checker.get();
    }
#else
    if (want_check) {
        static const bool warned = [] {
            SS_WARN("retirement checking requested but this build has "
                    "SS_CHECK_DISABLED; running unchecked");
            return true;
        }();
        (void)warned;
    }
#endif

    core::SmtCore machine(cfg, wl.program, mem);
    if (with_slices) {
        for (const auto &s : wl.slices) {
            auto validation = slice::validateSlice(s, wl.program);
            if (!validation.ok())
                SS_FATAL("invalid slice '", s.name, "' in workload '",
                         wl.name, "':\n", validation.summary());
            machine.loadSlice(s);
        }
    }
    RunResult res = machine.run(entry, run_opts);

    if (checker) {
        res.checkedRetired = checker->checkedCount();
        res.checkDiverged = checker->diverged();
        if (checker->diverged()) {
            res.checkReport = checker->report();
            res.outcome = SimOutcome::CheckerDivergence;
            // panicOnDivergence aborts at the divergence point; ending
            // up here means the caller opted into latching (fault
            // injection or checkFatal=false) — still fail loudly when
            // a *real* run was supposed to be fatal.
            if (opts.checkFatal && inject_reg == 0 &&
                inject_store == 0)
                SS_FATAL("workload '", wl.name,
                         "' diverged from the architectural "
                         "reference:\n",
                         res.checkReport);
        }
    }
    return res;
}

RunResult
Simulator::runSampled(const Workload &wl, const RunOptions &opts,
                      bool with_slices)
{
    SS_ASSERT(wl.entry != invalidAddr, "workload has no entry point");

    const auto ff_wall_start = std::chrono::steady_clock::now();
    arch::FastForward ff(wl.program);
    ff.reset(wl.entry);
    if (!opts.restoreCheckpoint.empty()) {
        std::string err;
        auto ckpt = arch::loadCheckpointFile(opts.restoreCheckpoint,
                                             err);
        if (!ckpt)
            SS_FATAL("workload '", wl.name, "': ", err);
        ff.restore(*ckpt);  // fatal on program-fingerprint mismatch
    } else if (wl.initMemory) {
        wl.initMemory(ff.mem());
    }

    // fastForwardInstructions is an absolute position from entry, so
    // restoring a checkpoint taken at that position makes this a
    // no-op and the two paths measure the identical region.
    ff.advanceTo(opts.fastForwardInstructions);
    if (!ff.runnable() &&
        ff.executed() < opts.fastForwardInstructions)
        SS_WARN("workload '", wl.name, "': fast-forward ended at ",
                ff.executed(), " of ", opts.fastForwardInstructions,
                " instructions (", arch::ffStopName(ff.lastStop()),
                "); sampling from the stop point");

    if (!opts.saveCheckpoint.empty()) {
        std::string err;
        if (!arch::saveCheckpointFile(ff.makeCheckpoint(),
                                      opts.saveCheckpoint, err))
            SS_FATAL("workload '", wl.name, "': ", err);
    }

    const unsigned regions = std::max(1u, opts.sampleRegions);
    const std::uint64_t per_region =
        opts.warmupInstructions + opts.maxMainInstructions;
    const std::uint64_t stride =
        opts.sampleStride ? opts.sampleStride : per_region;
    const std::uint64_t ff_base = ff.executed();

    RunResult agg;
    agg.wallFastForwardSeconds =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - ff_wall_start)
            .count();
    unsigned ran = 0;
    for (unsigned r = 0; r < regions; ++r) {
        RegionStart rs;
        rs.pc = ff.pc();
        rs.regs = ff.regs();
        rs.mem = ff.mem().clone();
        if (opts.warmPredictors)
            rs.warmth = ff.warmth();
        if (opts.warmCaches)
            rs.memWarmth = ff.memWarmth();
        if (opts.warmInstCache)
            rs.instWarmth = ff.instWarmth();
        const std::uint64_t region_start_inst = ff.executed();
        const Cycle region_base =
            opts.events ? opts.events->timeBase() : 0;
        RunResult rr = runOne(wl, opts, with_slices, &rs);
        if (opts.events) {
            // One named span per sampled region, then advance the
            // buffer's time base so the next region's cycle-0
            // restart lands past this one on the merged timeline.
            opts.events->pushSpan(obs::EventKind::Region, region_base,
                                  rr.totalCycles, 0, rs.pc,
                                  region_start_inst, r);
            opts.events->setTimeBase(region_base + rr.totalCycles +
                                     1);
        }
        accumulate(agg, std::move(rr));
        ++ran;
        if (r + 1 < regions) {
            ff.advance(stride);
            if (!ff.runnable()) {
                SS_WARN("workload '", wl.name,
                        "': sampling stream ended (",
                        arch::ffStopName(ff.lastStop()), ") after ",
                        ran, " of ", regions,
                        " regions; aggregating what ran");
                break;
            }
        }
    }
    agg.fastForwarded = ff_base;
    agg.sampledRegions = ran;
    return agg;
}

} // namespace specslice::sim
