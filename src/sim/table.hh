/**
 * @file
 * Minimal fixed-width ASCII table formatter used by the benchmark
 * harnesses to print paper-style tables.
 */

#ifndef SPECSLICE_SIM_TABLE_HH
#define SPECSLICE_SIM_TABLE_HH

#include <string>
#include <vector>

namespace specslice::sim
{

class Table
{
  public:
    explicit Table(std::vector<std::string> headers);

    /** Add a row; cell count must match the header count. */
    void addRow(std::vector<std::string> cells);

    /** Render with column alignment and a header rule. */
    std::string render() const;

    /** Helpers for formatting cells. */
    static std::string fmt(double v, int precision = 2);
    static std::string pct(double ratio, int precision = 0);
    static std::string count(std::uint64_t v);
    /** Thousands (e.g. Table 4's "(K)" and "(M)" columns). */
    static std::string kilo(std::uint64_t v, int precision = 1);
    static std::string mega(std::uint64_t v, int precision = 1);

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace specslice::sim

#endif // SPECSLICE_SIM_TABLE_HH
