#include "sim/result_json.hh"

#include <algorithm>

#include "obs/interval.hh"

namespace specslice::sim
{

using json::JsonObject;
using json::Value;
using json::jsonArray;

check::Digest::Section
digestSection(const std::string &config, const RunResult &r)
{
    check::Digest::Section s;
    s.config = config;
    auto &c = s.counters;
    c["cycles"] = r.cycles;
    c["main_retired"] = r.mainRetired;
    c["main_fetched"] = r.mainFetched;
    c["main_fetched_wrongpath"] = r.mainFetchedWrongPath;
    c["slice_fetched"] = r.sliceFetched;
    c["slice_retired"] = r.sliceRetired;
    c["cond_branches"] = r.condBranches;
    c["mispredictions"] = r.mispredictions;
    c["main_loads"] = r.loads;
    c["l1d_misses_main"] = r.l1dMissesMain;
    c["covered_misses"] = r.coveredMisses;
    c["slice_prefetches"] = r.slicePrefetches;
    c["forks"] = r.forks;
    c["forks_squashed"] = r.forksSquashed;
    c["forks_ignored"] = r.forksIgnored;
    c["predictions_generated"] = r.predictionsGenerated;
    c["correlator_used"] = r.correlatorUsed;
    c["correlator_wrong"] = r.correlatorWrong;
    c["late_predictions"] = r.latePredictions;
    c["late_reversals"] = r.lateReversals;
    // Every detail counter rides along (prefixed: several share names
    // with the top-level fields above), so any behavioural drift in
    // any subsystem shows up in the diff.
    for (const auto &[k, v] : r.detail.counters())
        c["detail." + k] = v.value();
    s.ratios["ipc"] = r.ipc();
    return s;
}

json::JsonObject
perfRecord(const WorkloadPerf &p, bool include_wall)
{
    JsonObject o;
    o.field("name", p.name)
        .field("cycles", p.result.cycles)
        .field("main_retired", p.result.mainRetired)
        .field("ipc", p.result.ipc());
    if (include_wall) {
        o.field("wall_seconds", p.wallSeconds)
            .field("sim_insts_per_sec", p.instsPerSec());
    }
    o.field("cond_branches", p.result.condBranches)
        .field("mispredictions", p.result.mispredictions)
        .field("loads", p.result.loads)
        .field("l1d_misses_main", p.result.l1dMissesMain)
        .field("covered_misses", p.result.coveredMisses)
        .field("forks", p.result.forks)
        .field("correlator_used", p.result.correlatorUsed)
        .field("outcome", std::string(outcomeName(p.result.outcome)));
    if (p.result.faultsInjected) {
        o.field("faults_injected", p.result.faultsInjected)
            .field("fault_summary", p.result.faultSummary);
    }
    if (p.result.sampledRegions) {
        o.field("fast_forwarded", p.result.fastForwarded)
            .field("sampled_regions",
                   std::uint64_t{p.result.sampledRegions});
    }
    if (!p.result.intervals.empty())
        o.raw("intervals", obs::intervalsToJson(p.result.intervals));
    return o;
}

namespace
{

SimOutcome
outcomeFromName(const std::string &name)
{
    for (SimOutcome o :
         {SimOutcome::Completed, SimOutcome::CycleLimit,
          SimOutcome::Watchdog, SimOutcome::CheckerDivergence,
          SimOutcome::Fault}) {
        if (name == outcomeName(o))
            return o;
    }
    return SimOutcome::Fault;
}

/** The named RunResult counters, in emission order. One table drives
 *  both directions so a field can't be written and then dropped on
 *  read-back. */
struct CounterField
{
    const char *key;
    std::uint64_t RunResult::*member;
};

constexpr CounterField counterFields[] = {
    {"faults_injected", &RunResult::faultsInjected},
    {"main_retired", &RunResult::mainRetired},
    {"main_fetched", &RunResult::mainFetched},
    {"main_fetched_wrong_path", &RunResult::mainFetchedWrongPath},
    {"slice_fetched", &RunResult::sliceFetched},
    {"slice_retired", &RunResult::sliceRetired},
    {"cond_branches", &RunResult::condBranches},
    {"mispredictions", &RunResult::mispredictions},
    {"loads", &RunResult::loads},
    {"l1d_misses_main", &RunResult::l1dMissesMain},
    {"covered_misses", &RunResult::coveredMisses},
    {"slice_prefetches", &RunResult::slicePrefetches},
    {"forks", &RunResult::forks},
    {"forks_squashed", &RunResult::forksSquashed},
    {"forks_ignored", &RunResult::forksIgnored},
    {"predictions_generated", &RunResult::predictionsGenerated},
    {"correlator_used", &RunResult::correlatorUsed},
    {"correlator_wrong", &RunResult::correlatorWrong},
    {"late_predictions", &RunResult::latePredictions},
    {"late_reversals", &RunResult::lateReversals},
    {"fast_forwarded", &RunResult::fastForwarded},
    {"checked_retired", &RunResult::checkedRetired},
};

std::string
intervalsRecordJson(const std::vector<obs::IntervalRecord> &records)
{
    return obs::intervalsToJson(records);
}

bool
intervalsFromJson(const Value &arr,
                  std::vector<obs::IntervalRecord> &out)
{
    if (!arr.isArray())
        return false;
    out.clear();
    out.reserve(arr.items.size());
    for (const Value &e : arr.items) {
        if (!e.isObject())
            return false;
        obs::IntervalRecord r;
        r.index = e.getU64("interval");
        r.startCycle = e.getU64("start_cycle");
        r.endCycle = e.getU64("end_cycle");
        r.retired = e.getU64("retired");
        r.loads = e.getU64("loads");
        r.l1dMisses = e.getU64("l1d_misses");
        r.l2Misses = e.getU64("l2_misses");
        r.condBranches = e.getU64("cond_branches");
        r.mispredictions = e.getU64("mispredictions");
        r.forks = e.getU64("forks");
        r.predsGenerated = e.getU64("preds_generated");
        r.predsBound = e.getU64("preds_bound");
        r.predsUsed = e.getU64("preds_used");
        r.predsKilled = e.getU64("preds_killed");
        out.push_back(r);
    }
    return true;
}

std::string
profileToJson(const core::PcProfile &profile)
{
    // Deterministic order: sort by PC (the map is unordered).
    std::vector<std::pair<Addr, core::PcProfile::Counts>> rows(
        profile.perPc.begin(), profile.perPc.end());
    std::sort(rows.begin(), rows.end(),
              [](const auto &a, const auto &b) {
                  return a.first < b.first;
              });
    std::vector<std::string> elems;
    elems.reserve(rows.size());
    for (const auto &[pc, c] : rows) {
        JsonObject o;
        o.field("pc", std::uint64_t{pc})
            .field("branch_exec", c.branchExec)
            .field("branch_mispred", c.branchMispred)
            .field("load_exec", c.loadExec)
            .field("load_miss", c.loadMiss)
            .field("store_exec", c.storeExec)
            .field("store_miss", c.storeMiss);
        elems.push_back(o.str());
    }
    return jsonArray(elems);
}

bool
profileFromJson(const Value &arr, core::PcProfile &out)
{
    if (!arr.isArray())
        return false;
    out.perPc.clear();
    for (const Value &e : arr.items) {
        if (!e.isObject())
            return false;
        core::PcProfile::Counts c;
        c.branchExec = e.getU64("branch_exec");
        c.branchMispred = e.getU64("branch_mispred");
        c.loadExec = e.getU64("load_exec");
        c.loadMiss = e.getU64("load_miss");
        c.storeExec = e.getU64("store_exec");
        c.storeMiss = e.getU64("store_miss");
        out.perPc.emplace(static_cast<Addr>(e.getU64("pc")), c);
    }
    return true;
}

} // namespace

std::string
resultToJson(const RunResult &r)
{
    JsonObject o;
    o.field("outcome", std::string(outcomeName(r.outcome)));
    if (!r.diagnosis.empty())
        o.field("diagnosis", r.diagnosis);
    if (!r.faultSummary.empty())
        o.field("fault_summary", r.faultSummary);
    o.field("cycles", r.cycles);
    for (const CounterField &f : counterFields)
        o.field(f.key, r.*(f.member));
    o.field("sampled_regions", std::uint64_t{r.sampledRegions});
    if (r.checkDiverged) {
        o.field("check_diverged", std::uint64_t{1})
            .field("check_report", r.checkReport);
    }

    std::vector<std::string> detail;
    for (const auto &[name, stat] : r.detail.counters()) {
        detail.push_back(JsonObject()
                             .field("name", name)
                             .field("value", stat.value())
                             .str());
    }
    if (!detail.empty())
        o.raw("detail", jsonArray(detail));
    if (!r.intervals.empty())
        o.raw("intervals", intervalsRecordJson(r.intervals));
    if (!r.profile.perPc.empty())
        o.raw("profile", profileToJson(r.profile));
    return o.str();
}

bool
resultFromJson(const Value &doc, RunResult &out, std::string &error)
{
    if (!doc.isObject()) {
        error = "result document is not an object";
        return false;
    }
    const Value *outcome = doc.get("outcome");
    if (!outcome || !outcome->isString()) {
        error = "result document lacks an outcome";
        return false;
    }
    out = RunResult{};
    out.outcome = outcomeFromName(outcome->str);
    out.diagnosis = doc.getStr("diagnosis");
    out.faultSummary = doc.getStr("fault_summary");
    out.cycles = doc.getU64("cycles");
    for (const CounterField &f : counterFields)
        out.*(f.member) = doc.getU64(f.key);
    out.sampledRegions =
        static_cast<unsigned>(doc.getU64("sampled_regions"));
    out.checkDiverged = doc.getU64("check_diverged") != 0;
    out.checkReport = doc.getStr("check_report");

    if (const Value *detail = doc.get("detail")) {
        if (!detail->isArray()) {
            error = "detail is not an array";
            return false;
        }
        for (const Value &e : detail->items) {
            if (!e.isObject() || !e.get("name")) {
                error = "malformed detail entry";
                return false;
            }
            out.detail.set(e.getStr("name"), e.getU64("value"));
        }
    }
    if (const Value *iv = doc.get("intervals")) {
        if (!intervalsFromJson(*iv, out.intervals)) {
            error = "malformed intervals array";
            return false;
        }
    }
    if (const Value *prof = doc.get("profile")) {
        if (!profileFromJson(*prof, out.profile)) {
            error = "malformed profile array";
            return false;
        }
    }
    return true;
}

} // namespace specslice::sim
