#include "sim/serve_job.hh"

#include <algorithm>
#include <exception>

#include "common/failure.hh"
#include "common/hash.hh"
#include "fault/fault.hh"
#include "obs/events.hh"
#include "obs/metrics.hh"
#include "sim/experiments.hh"
#include "sim/run_key.hh"
#include "trace/frontend.hh"
#include "workloads/workloads.hh"

namespace specslice::sim
{

namespace
{

/** Field-typed extraction: a present-but-mistyped field is a hard
 *  error (the lenient getU64-style defaults would silently run the
 *  wrong experiment), a missing field keeps the spec default. */
struct FieldReader
{
    const json::Value &doc;
    std::string &error;
    bool ok = true;

    void
    u64(const char *key, std::uint64_t &out)
    {
        const json::Value *v = doc.get(key);
        if (!v)
            return;
        if (!v->isNumber() || !v->isInt || v->intval < 0) {
            fail(key, "a non-negative integer");
            return;
        }
        out = static_cast<std::uint64_t>(v->intval);
    }

    void
    u32(const char *key, unsigned &out)
    {
        std::uint64_t wide = out;
        u64(key, wide);
        out = static_cast<unsigned>(wide);
    }

    void
    i32(const char *key, int &out)
    {
        const json::Value *v = doc.get(key);
        if (!v)
            return;
        if (!v->isNumber() || !v->isInt) {
            fail(key, "an integer");
            return;
        }
        out = static_cast<int>(v->intval);
    }

    void
    boolean(const char *key, bool &out)
    {
        const json::Value *v = doc.get(key);
        if (!v)
            return;
        if (!v->isBool()) {
            fail(key, "a boolean");
            return;
        }
        out = v->boolean;
    }

    void
    string(const char *key, std::string &out)
    {
        const json::Value *v = doc.get(key);
        if (!v)
            return;
        if (!v->isString()) {
            fail(key, "a string");
            return;
        }
        out = v->str;
    }

    void
    fail(const char *key, const char *want)
    {
        if (ok)
            error = std::string("field '") + key + "' must be " + want;
        ok = false;
    }
};

/** Validation + machine assembly shared by jobCacheKey and runJob.
 *  A spec error leaves error set and returns false. */
struct PreparedJob
{
    Workload wl;
    MachineConfig cfg;
    RunOptions opts;
    fault::FaultPlan plan;

    /** (tag, with_slices) of each constituent run, in order. */
    struct RunPlan
    {
        const char *tag;
        bool withSlices;
        RunOptions opts;
    };
    std::vector<RunPlan> runs;
    const char *mode = "single";
};

bool
prepare(const JobSpec &s, PreparedJob &out, std::string &error)
{
    if (s.width != 4 && s.width != 8) {
        error = "width " + std::to_string(s.width) +
                " is not a Table 1 machine width (valid: 4, 8)";
        return false;
    }
    if (s.threads == 0 || s.threads > 64) {
        error = "threads " + std::to_string(s.threads) +
                " out of range (valid: 1..64)";
        return false;
    }
    if (!fault::FaultPlan::parse(s.inject, out.plan, error))
        return false;
    out.plan.seed = s.seed;

    if (!s.traceFile.empty()) {
        // Trace mode: the workload (program, entry, memory image,
        // slices, scale) comes out of the trace file itself.
        std::optional<trace::LoadedTrace> loaded =
            trace::loadTraceWorkload(s.traceFile, error);
        if (!loaded)
            return false;
        out.wl = std::move(loaded->workload);
    } else {
        const std::vector<std::string> &all =
            workloads::allWorkloadNames();
        if (std::find(all.begin(), all.end(), s.workload) ==
            all.end()) {
            error = "unknown workload '" + s.workload + "'";
            return false;
        }
        // The workload must outlast the whole sampling span (same
        // formula as specslice_run / specslice_verify).
        const std::uint64_t per_region = s.insts + s.warmup;
        const std::uint64_t span =
            s.fastforward +
            (std::max(1u, s.sampleRegions) - 1) *
                (s.sampleStride ? s.sampleStride : per_region) +
            per_region;
        workloads::Params params;
        params.scale = span * 2;
        params.seed = s.seed;
        out.wl = workloads::buildWorkload(s.workload, params);
    }

    out.cfg = s.width == 8 ? MachineConfig::eightWide()
                           : MachineConfig::fourWide();
    out.cfg.numThreads = s.threads;
    if (s.bias >= 0)
        out.cfg.mainThreadFetchBias = s.bias;

    RunOptions &o = out.opts;
    o.traceFile = s.traceFile;
    o.maxMainInstructions = s.insts;
    o.warmupInstructions = s.warmup;
    o.maxCycles = s.maxCycles;
    o.watchdogCycles = s.watchdog;
    o.watchdogEnabled = !s.noWatchdog;
    o.faults = out.plan;
    o.check = s.check;
    o.fastForwardInstructions = s.fastforward;
    o.sampleRegions = s.sampleRegions;
    o.sampleStride = s.sampleStride;
    o.warmPredictors = !s.coldPredictors;
    o.warmCaches = !s.coldCaches;
    o.warmInstCache = !s.coldIcache;
    // Served documents always embed the interval series, matching
    // specslice_run --json (which arms intervals whenever --json is
    // given).
    o.intervalCycles = s.intervalCycles;

    if (s.limit) {
        ExperimentConfig ecfg;
        ecfg.measureInsts = s.insts;
        ecfg.warmupInsts = s.warmup;
        ecfg.seed = s.seed;
        RunOptions lo = limitOptions(out.wl, ecfg);
        lo.check = o.check;
        lo.maxCycles = o.maxCycles;
        lo.watchdogCycles = o.watchdogCycles;
        lo.watchdogEnabled = o.watchdogEnabled;
        lo.faults = o.faults;
        lo.intervalCycles = o.intervalCycles;
        lo.fastForwardInstructions = o.fastForwardInstructions;
        lo.sampleRegions = o.sampleRegions;
        lo.sampleStride = o.sampleStride;
        lo.warmPredictors = o.warmPredictors;
        lo.warmCaches = o.warmCaches;
        lo.warmInstCache = o.warmInstCache;
        out.runs.push_back({"limit", false, lo});
        out.mode = "limit";
    } else if (s.compare) {
        out.runs.push_back({"baseline", false, o});
        out.runs.push_back({"slices", true, o});
        out.mode = "compare";
    } else {
        out.runs.push_back(
            {s.slices ? "slices" : "baseline", s.slices, o});
        out.mode = "single";
    }
    return true;
}

} // namespace

bool
JobSpec::fromJson(const json::Value &doc, JobSpec &out,
                  std::string &error)
{
    if (!doc.isObject()) {
        error = "request is not a JSON object";
        return false;
    }
    FieldReader r{doc, error};
    r.string("workload", out.workload);
    r.string("trace_file", out.traceFile);
    r.u32("width", out.width);
    r.u64("insts", out.insts);
    r.u64("warmup", out.warmup);
    r.u64("seed", out.seed);
    r.u32("threads", out.threads);
    r.i32("bias", out.bias);
    r.boolean("slices", out.slices);
    r.boolean("compare", out.compare);
    r.boolean("limit", out.limit);
    r.boolean("check", out.check);
    r.string("inject", out.inject);
    r.u64("fastforward", out.fastforward);
    r.u32("sample", out.sampleRegions);
    r.u64("sample_stride", out.sampleStride);
    r.boolean("cold_predictors", out.coldPredictors);
    r.boolean("cold_caches", out.coldCaches);
    r.boolean("cold_icache", out.coldIcache);
    r.u64("watchdog", out.watchdog);
    r.boolean("no_watchdog", out.noWatchdog);
    r.u64("max_cycles", out.maxCycles);
    r.u64("interval_cycles", out.intervalCycles);
    r.boolean("allow_partial", out.allowPartial);
    if (r.ok && out.intervalCycles == 0) {
        error = "field 'interval_cycles' must be positive";
        r.ok = false;
    }
    return r.ok;
}

std::string
JobSpec::toJson() const
{
    json::JsonObject o;
    o.field("workload", workload)
        .field("trace_file", traceFile)
        .field("width", std::uint64_t{width})
        .field("insts", insts)
        .field("warmup", warmup)
        .field("seed", seed)
        .field("threads", std::uint64_t{threads})
        .raw("bias", std::to_string(bias))
        .raw("slices", slices ? "true" : "false")
        .raw("compare", compare ? "true" : "false")
        .raw("limit", limit ? "true" : "false")
        .raw("check", check ? "true" : "false")
        .field("inject", inject)
        .field("fastforward", fastforward)
        .field("sample", std::uint64_t{sampleRegions})
        .field("sample_stride", sampleStride)
        .raw("cold_predictors", coldPredictors ? "true" : "false")
        .raw("cold_caches", coldCaches ? "true" : "false")
        .raw("cold_icache", coldIcache ? "true" : "false")
        .field("watchdog", watchdog)
        .raw("no_watchdog", noWatchdog ? "true" : "false")
        .field("max_cycles", maxCycles)
        .field("interval_cycles", intervalCycles)
        .raw("allow_partial", allowPartial ? "true" : "false");
    return o.str();
}

std::string
jobCacheKey(const JobSpec &spec, std::string &error)
{
    PreparedJob job;
    if (!prepare(spec, job, error))
        return "";

    std::string text = "job_schema = 1\n";
    text += "mode = ";
    text += job.mode;
    text += "\nallow_partial = ";
    text += spec.allowPartial ? "1" : "0";
    text += "\n";
    for (const PreparedJob::RunPlan &r : job.runs) {
        RunKeyInputs in;
        in.workload = &job.wl;
        in.dataSeed = spec.seed;
        in.config = &job.cfg;
        in.options = &r.opts;
        in.withSlices = r.withSlices;
        text += "run ";
        text += r.tag;
        text += " {\n";
        text += canonicalKeyText(in);
        text += "}\n";
    }
    text += "binary = " + binaryFingerprint() + "\n";
    return sha256Hex(text);
}

JobOutcome
runJob(const JobSpec &spec, obs::EventBuffer *events)
{
    JobOutcome out;
    PreparedJob job;
    std::string err;
    if (!prepare(spec, job, err)) {
        out.exitCode = 2;
        out.document =
            errorDocument(spec.workload, spec.seed, "usage", err);
        return out;
    }

    DocMeta meta;
    meta.workload = job.wl.name;
    meta.width = spec.width;
    meta.insts = spec.insts;
    meta.warmup = spec.warmup;
    meta.seed = spec.seed;
    meta.injectDescription =
        job.plan.empty() ? "" : job.plan.describe();
    meta.compare = spec.compare && !spec.limit;

    std::vector<WorkloadPerf> runs;
    try {
        ScopedThrowErrors throwing;
        for (const PreparedJob::RunPlan &r : job.runs) {
            // Fresh machine per configuration, exactly like
            // specslice_run --compare; a single run also matches
            // (state is fully reset per run either way).
            Simulator machine(job.cfg);
            WorkloadPerf p;
            p.name = r.tag;
            RunOptions ro = r.opts;
            ro.events = events;
            const Cycle base0 = events ? events->timeBase() : 0;
            p.result = r.withSlices
                           ? machine.run(job.wl, ro, true)
                           : machine.runBaseline(job.wl, ro);
            if (events) {
                // Compare pairs (and any later runs) continue past
                // this run on the shared timeline. runSampled may
                // already have advanced the base internally; take
                // whichever frontier is further.
                const Cycle internal = events->timeBase();
                events->setTimeBase(
                    std::max(internal,
                             base0 + p.result.totalCycles) +
                    1);
            }
            if (obs::MetricsRegistry *reg = obs::ambientMetrics()) {
                auto toUsec = [](double s) {
                    return s > 0 ? static_cast<std::uint64_t>(
                                       s * 1e6)
                                 : 0;
                };
                reg->histogram("ss_run_fastforward_usec")
                    .observe(toUsec(
                        p.result.wallFastForwardSeconds));
                reg->histogram("ss_run_warmup_usec")
                    .observe(toUsec(p.result.wallWarmupSeconds));
                reg->histogram("ss_run_measure_usec")
                    .observe(toUsec(p.result.wallMeasureSeconds));
            }
            runs.push_back(std::move(p));
        }
    } catch (const SimError &e) {
        out.exitCode = 4;
        out.document =
            errorDocument(job.wl.name, spec.seed,
                          SimError::kindName(e.kind()), e.what());
        return out;
    } catch (const std::exception &e) {
        out.exitCode = 4;
        out.document = errorDocument(job.wl.name, spec.seed, "failed",
                                     e.what());
        return out;
    }

    out.document = perfDocument(meta, runs, /*include_wall=*/false);
    SimOutcome worst = worstOutcome(runs);
    if (worst == SimOutcome::CheckerDivergence)
        out.exitCode = 1;
    else if (worst != SimOutcome::Completed && !spec.allowPartial)
        out.exitCode = 3;
    return out;
}

int
outcomeSeverity(SimOutcome oc)
{
    switch (oc) {
      case SimOutcome::Completed:
        return 0;
      case SimOutcome::CycleLimit:
        return 1;
      case SimOutcome::Watchdog:
        return 2;
      case SimOutcome::CheckerDivergence:
        return 3;
      case SimOutcome::Fault:
        return 4;
    }
    return 4;
}

SimOutcome
worstOutcome(const std::vector<WorkloadPerf> &runs)
{
    SimOutcome worst = SimOutcome::Completed;
    for (const WorkloadPerf &p : runs)
        if (outcomeSeverity(p.result.outcome) > outcomeSeverity(worst))
            worst = p.result.outcome;
    return worst;
}

std::string
perfDocument(const DocMeta &meta, const std::vector<WorkloadPerf> &runs,
             bool include_wall)
{
    SS_ASSERT(!runs.empty(), "perfDocument needs at least one run");
    std::uint64_t checked = 0;
    for (const WorkloadPerf &p : runs)
        checked += p.result.checkedRetired;
    SimOutcome worst = worstOutcome(runs);
    const RunResult &result = runs.back().result;

    std::vector<std::string> elems;
    for (const WorkloadPerf &p : runs)
        elems.push_back(perfRecord(p, include_wall).str());

    json::JsonObject doc;
    doc.field("schema_version", resultSchemaVersion)
        .field("workload", meta.workload)
        .field("width", std::uint64_t{meta.width})
        .field("insts", meta.insts)
        .field("warmup", meta.warmup)
        .field("seed", meta.seed)
        .field("outcome", std::string(outcomeName(worst)))
        .raw("runs", json::jsonArray(elems));
    if (!meta.injectDescription.empty())
        doc.field("inject", meta.injectDescription);
    if (result.sampledRegions)
        doc.field("fast_forwarded", result.fastForwarded)
            .field("sampled_regions",
                   std::uint64_t{result.sampledRegions});
    if (meta.compare && runs.size() >= 2)
        doc.field("speedup_pct",
                  speedupPct(runs[0].result, runs[1].result));
    if (checked)
        doc.field("checked_retired", checked);
    return doc.str();
}

std::string
errorDocument(const std::string &workload, std::uint64_t seed,
              const std::string &kind, const std::string &message)
{
    json::JsonObject err;
    err.field("kind", kind).field("message", message);
    json::JsonObject doc;
    doc.field("schema_version", resultSchemaVersion)
        .field("workload", workload)
        .field("seed", seed)
        .raw("error", err.str());
    return doc.str();
}

} // namespace specslice::sim
