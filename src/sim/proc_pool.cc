#include "sim/proc_pool.hh"

#include <algorithm>
#include <cerrno>
#include <cstdint>
#include <cstring>
#include <ctime>
#include <exception>
#include <new>

#include <fcntl.h>
#include <poll.h>
#include <pthread.h>
#include <signal.h>
#include <sys/mman.h>
#include <sys/wait.h>
#include <unistd.h>

#if defined(__linux__)
#include <sys/prctl.h>
#endif

#include "common/failure.hh"
#include "common/logging.hh"

namespace specslice::sim
{

namespace proc_detail
{

enum SlotState : std::uint32_t
{
    SlotFree = 0,
    SlotQueued = 1,
};

struct Slot
{
    std::uint32_t state = SlotFree;
    std::uint32_t len = 0;
    std::uint64_t ticket = 0;
    char payload[ProcPool::maxPayloadBytes];
};

struct WorkerRecord
{
    std::uint64_t ticket = 0;  ///< job being executed right now
    std::uint32_t active = 0;  ///< 1 while executing
    std::uint32_t pad = 0;
};

constexpr unsigned numSlots = 64;
constexpr unsigned maxWorkers = 64;

struct SharedRegion
{
    pthread_mutex_t mu;
    pthread_cond_t cv;
    std::uint32_t stop;
    Slot slots[numSlots];
    WorkerRecord workers[maxWorkers];
};

namespace
{

/** Lock handling EOWNERDEAD: a worker died mid-section; mark the
 *  mutex consistent and carry on (slot states are each written with
 *  a single store, so the protected data is always usable). */
void
lockRobust(pthread_mutex_t *mu)
{
    int rc = pthread_mutex_lock(mu);
    if (rc == EOWNERDEAD)
        pthread_mutex_consistent(mu);
    else if (rc != 0)
        SS_FATAL("proc pool mutex lock failed: ", std::strerror(rc));
}

void
initShared(SharedRegion *shm)
{
    pthread_mutexattr_t ma;
    pthread_mutexattr_init(&ma);
    pthread_mutexattr_setpshared(&ma, PTHREAD_PROCESS_SHARED);
    pthread_mutexattr_setrobust(&ma, PTHREAD_MUTEX_ROBUST);
    pthread_mutex_init(&shm->mu, &ma);
    pthread_mutexattr_destroy(&ma);

    pthread_condattr_t ca;
    pthread_condattr_init(&ca);
    pthread_condattr_setpshared(&ca, PTHREAD_PROCESS_SHARED);
    pthread_condattr_setclock(&ca, CLOCK_MONOTONIC);
    pthread_cond_init(&shm->cv, &ca);
    pthread_condattr_destroy(&ca);

    shm->stop = 0;
}

/** cv wait with a bounded sleep, so waiters re-check liveness even
 *  if a wakeup is lost to a crashing worker. */
void
waitABit(SharedRegion *shm)
{
    timespec ts;
    clock_gettime(CLOCK_MONOTONIC, &ts);
    ts.tv_nsec += 100 * 1000 * 1000;
    if (ts.tv_nsec >= 1'000'000'000) {
        ts.tv_nsec -= 1'000'000'000;
        ++ts.tv_sec;
    }
    int rc = pthread_cond_timedwait(&shm->cv, &shm->mu, &ts);
    if (rc == EOWNERDEAD)
        pthread_mutex_consistent(&shm->mu);
}

void
putFrame(std::string &out, std::uint64_t ticket, std::uint32_t status,
         const std::string &payload)
{
    auto putU = [&out](const void *p, std::size_t n) {
        out.append(static_cast<const char *>(p), n);
    };
    std::uint64_t len = payload.size();
    putU(&ticket, sizeof(ticket));
    putU(&status, sizeof(status));
    putU(&len, sizeof(len));
    out += payload;
}

/** Write fully, retrying on EINTR/short writes. */
bool
writeAll(int fd, const char *p, std::size_t n)
{
    while (n) {
        ssize_t w = ::write(fd, p, n);
        if (w < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        p += w;
        n -= static_cast<std::size_t>(w);
    }
    return true;
}

} // namespace

} // namespace proc_detail

using namespace proc_detail;

ProcPool::ProcPool(unsigned workers, JobFn fn,
                   unsigned max_job_attempts)
    : fn_(std::move(fn)),
      maxAttempts_(std::max(1u, max_job_attempts))
{
    unsigned n = std::max(1u, std::min(workers, maxWorkers));

    // Metric slots must exist before the first fork so every worker
    // page maps the same schema.
    if (obs::MetricsRegistry *reg = obs::ambientMetrics()) {
        mJobs_ = reg->counter("ss_worker_jobs_total",
                              "Jobs executed by pool workers");
        mBusyUsec_ =
            reg->counter("ss_worker_busy_usec_total",
                         "Wall microseconds workers spent running "
                         "job functions");
        mRetries_ = reg->counter(
            "ss_job_retries_total",
            "Jobs requeued after crashing their worker");
        mPoisoned_ = reg->counter(
            "ss_jobs_poisoned_total",
            "Jobs failed permanently after crashing "
            "max_job_attempts workers");
    }

    void *mem =
        ::mmap(nullptr, sizeof(SharedRegion), PROT_READ | PROT_WRITE,
               MAP_SHARED | MAP_ANONYMOUS, -1, 0);
    SS_ASSERT(mem != MAP_FAILED, "proc pool shared mmap failed");
    shm_ = new (mem) SharedRegion;
    initShared(shm_);
    for (Slot &s : shm_->slots) {
        s.state = SlotFree;
        s.len = 0;
        s.ticket = 0;
    }
    for (WorkerRecord &w : shm_->workers)
        w = WorkerRecord{};

    // A worker's death must not kill the parent via SIGPIPE when the
    // parent later writes... the parent never writes to the pipes,
    // but a worker writing after the parent died would. Workers set
    // PDEATHSIG instead; the parent just ignores SIGPIPE defensively
    // around its own sockets elsewhere.
    workers_.resize(n);
    for (unsigned i = 0; i < n; ++i)
        spawnWorker(i);
}

ProcPool::~ProcPool()
{
    if (!shm_)
        return;
    lockRobust(&shm_->mu);
    shm_->stop = 1;
    pthread_cond_broadcast(&shm_->cv);
    pthread_mutex_unlock(&shm_->mu);

    for (Worker &w : workers_) {
        if (w.pid > 0) {
            int status = 0;
            // Give the worker a moment to exit cleanly, then insist.
            for (int spin = 0; spin < 200; ++spin) {
                pid_t r = ::waitpid(w.pid, &status, WNOHANG);
                if (r == w.pid) {
                    w.pid = -1;
                    break;
                }
                ::usleep(2000);
            }
            if (w.pid > 0) {
                ::kill(w.pid, SIGKILL);
                ::waitpid(w.pid, &status, 0);
                w.pid = -1;
            }
        }
        if (w.pipeFd >= 0) {
            ::close(w.pipeFd);
            w.pipeFd = -1;
        }
    }
    ::munmap(shm_, sizeof(SharedRegion));
    shm_ = nullptr;
}

void
ProcPool::spawnWorker(unsigned index)
{
    int fds[2];
    SS_ASSERT(::pipe(fds) == 0, "proc pool pipe failed");

    // Clear the lane's shared record BEFORE forking: the child may
    // pick a job and publish its ticket immediately, and a parent
    // wipe racing that publish would lose the ticket — a subsequent
    // crash would then look idle and the job would never settle.
    shm_->workers[index] = WorkerRecord{};

    pid_t pid = ::fork();
    SS_ASSERT(pid >= 0, "proc pool fork failed");
    if (pid == 0) {
        // Child: drop every parent-side fd we inherited except our
        // own write end, then serve jobs forever.
        ::close(fds[0]);
        for (Worker &w : workers_) {
            if (w.pipeFd >= 0)
                ::close(w.pipeFd);
        }
#if defined(__linux__)
        ::prctl(PR_SET_PDEATHSIG, SIGTERM);
#endif
        workerMain(index, fds[1]);
    }

    ::close(fds[1]);
    // Non-blocking read end: drain loops must never hang the parent.
    ::fcntl(fds[0], F_SETFL, O_NONBLOCK);
    workers_[index].pid = pid;
    workers_[index].pipeFd = fds[0];
    workers_[index].buf.clear();
}

void
ProcPool::workerMain(unsigned index, int write_fd)
{
    // Page 0 is the daemon; worker i writes page i+1. Values a dead
    // worker already recorded survive in the parent-owned mapping,
    // and its replacement resumes on the same page.
    if (obs::MetricsRegistry *reg = obs::ambientMetrics())
        reg->bindProcess(index + 1);

    auto nowUsec = [] {
        timespec ts{};
        ::clock_gettime(CLOCK_MONOTONIC, &ts);
        return static_cast<std::uint64_t>(ts.tv_sec) * 1000000 +
               static_cast<std::uint64_t>(ts.tv_nsec) / 1000;
    };

    WorkerRecord &me = shm_->workers[index];
    for (;;) {
        std::string payload;
        std::uint64_t ticket = 0;

        lockRobust(&shm_->mu);
        for (;;) {
            if (shm_->stop)
                break;
            // Lowest-ticket queued slot first: near-FIFO service.
            Slot *pick = nullptr;
            for (Slot &s : shm_->slots) {
                if (s.state == SlotQueued &&
                    (!pick || s.ticket < pick->ticket))
                    pick = &s;
            }
            if (pick) {
                ticket = pick->ticket;
                payload.assign(pick->payload, pick->len);
                pick->state = SlotFree;
                me.ticket = ticket;
                me.active = 1;
                // A submitter may be waiting for a free slot.
                pthread_cond_broadcast(&shm_->cv);
                break;
            }
            waitABit(shm_);
        }
        bool stopping = shm_->stop != 0;
        pthread_mutex_unlock(&shm_->mu);
        if (stopping)
            ::_exit(0);

        std::uint32_t status =
            static_cast<std::uint32_t>(JobStatus::Done);
        std::string result;
        const std::uint64_t job_start = nowUsec();
        try {
            result = fn_(payload);
        } catch (const std::exception &e) {
            status = static_cast<std::uint32_t>(JobStatus::Failed);
            result = e.what();
        } catch (...) {
            status = static_cast<std::uint32_t>(JobStatus::Failed);
            result = "unknown exception in proc pool job";
        }
        mJobs_.inc();
        mBusyUsec_.inc(nowUsec() - job_start);

        std::string frame;
        putFrame(frame, ticket, status, result);
        if (!writeAll(write_fd, frame.data(), frame.size()))
            ::_exit(3);  // parent gone

        lockRobust(&shm_->mu);
        me.active = 0;
        me.ticket = 0;
        pthread_mutex_unlock(&shm_->mu);
    }
}

std::uint64_t
ProcPool::submit(const std::string &payload, std::string &error)
{
    if (payload.size() > maxPayloadBytes) {
        error = "job payload of " + std::to_string(payload.size()) +
                " bytes exceeds the " +
                std::to_string(maxPayloadBytes) + "-byte slot size";
        return 0;
    }
    if (stopped_ || !shm_) {
        error = "proc pool is shut down";
        return 0;
    }

    lockRobust(&shm_->mu);
    Slot *slot = nullptr;
    while (!slot) {
        for (Slot &s : shm_->slots) {
            if (s.state == SlotFree) {
                slot = &s;
                break;
            }
        }
        if (!slot)
            waitABit(shm_);
    }
    const std::uint64_t ticket = nextTicket_++;
    slot->ticket = ticket;
    slot->len = static_cast<std::uint32_t>(payload.size());
    std::memcpy(slot->payload, payload.data(), payload.size());
    slot->state = SlotQueued;
    pthread_cond_broadcast(&shm_->cv);
    pthread_mutex_unlock(&shm_->mu);
    ++inFlight_;
    pending_[ticket] = PendingJob{payload, 1, false};
    return ticket;
}

bool
ProcPool::cancelQueued(std::uint64_t ticket)
{
    if (!shm_)
        return false;
    lockRobust(&shm_->mu);
    bool found = false;
    for (Slot &s : shm_->slots) {
        if (s.state == SlotQueued && s.ticket == ticket) {
            s.state = SlotFree;
            found = true;
            // A submitter may be waiting for a free slot.
            pthread_cond_broadcast(&shm_->cv);
            break;
        }
    }
    pthread_mutex_unlock(&shm_->mu);
    if (found) {
        pending_.erase(ticket);
        if (inFlight_)
            --inFlight_;
    }
    return found;
}

bool
ProcPool::killActive(std::uint64_t ticket)
{
    if (!shm_)
        return false;
    int victim_pid = -1;
    lockRobust(&shm_->mu);
    for (unsigned i = 0; i < workers_.size(); ++i) {
        const WorkerRecord &rec = shm_->workers[i];
        if (rec.active && rec.ticket == ticket &&
            workers_[i].pid > 0) {
            victim_pid = workers_[i].pid;
            break;
        }
    }
    pthread_mutex_unlock(&shm_->mu);
    if (victim_pid < 0)
        return false;
    auto it = pending_.find(ticket);
    if (it != pending_.end())
        it->second.condemned = true;
    ::kill(victim_pid, SIGKILL);
    return true;
}

void
ProcPool::drainFrames(Worker &w, std::vector<Result> &out)
{
    constexpr std::size_t headerBytes = 8 + 4 + 8;
    for (;;) {
        if (w.buf.size() < headerBytes)
            return;
        std::uint64_t ticket, len;
        std::uint32_t status;
        std::memcpy(&ticket, w.buf.data(), 8);
        std::memcpy(&status, w.buf.data() + 8, 4);
        std::memcpy(&len, w.buf.data() + 12, 8);
        if (w.buf.size() < headerBytes + len)
            return;
        Result r;
        r.ticket = ticket;
        r.status = static_cast<JobStatus>(status);
        r.payload = w.buf.substr(headerBytes, len);
        w.buf.erase(0, headerBytes + len);
        pending_.erase(r.ticket);
        out.push_back(std::move(r));
        if (inFlight_)
            --inFlight_;
    }
}

bool
ProcPool::requeueCrashed(std::uint64_t ticket, const PendingJob &job)
{
    lockRobust(&shm_->mu);
    Slot *slot = nullptr;
    for (Slot &s : shm_->slots) {
        if (s.state == SlotFree) {
            slot = &s;
            break;
        }
    }
    if (slot) {
        slot->ticket = ticket;
        slot->len = static_cast<std::uint32_t>(job.payload.size());
        std::memcpy(slot->payload, job.payload.data(),
                    job.payload.size());
        slot->state = SlotQueued;
        pthread_cond_broadcast(&shm_->cv);
    }
    pthread_mutex_unlock(&shm_->mu);
    return slot != nullptr;
}

void
ProcPool::reapAndRespawn(std::vector<Result> &out)
{
    for (unsigned i = 0; i < workers_.size(); ++i) {
        Worker &w = workers_[i];
        if (w.pid <= 0)
            continue;
        int status = 0;
        pid_t r = ::waitpid(w.pid, &status, WNOHANG);
        if (r != w.pid)
            continue;

        // Salvage complete frames already in the pipe, then close it.
        if (w.pipeFd >= 0) {
            char buf[4096];
            ssize_t n;
            while ((n = ::read(w.pipeFd, buf, sizeof(buf))) > 0)
                w.buf.append(buf, static_cast<std::size_t>(n));
            drainFrames(w, out);
            ::close(w.pipeFd);
            w.pipeFd = -1;
        }
        w.pid = -1;

        // If it died mid-job, the shared record still names the
        // ticket: surface one typed crashed result for it.
        lockRobust(&shm_->mu);
        WorkerRecord rec = shm_->workers[i];
        shm_->workers[i] = WorkerRecord{};
        pthread_mutex_unlock(&shm_->mu);
        if (rec.active) {
            std::string how;
            if (WIFSIGNALED(status)) {
                how = "worker killed by signal " +
                      std::to_string(WTERMSIG(status)) +
                      " (respawned)";
            } else {
                how = "worker exited with status " +
                      std::to_string(WEXITSTATUS(status)) +
                      " mid-job (respawned)";
            }

            auto pj = pending_.find(rec.ticket);
            bool condemned =
                pj != pending_.end() && pj->second.condemned;
            bool retryable = !condemned && pj != pending_.end() &&
                             maxAttempts_ > 1 &&
                             pj->second.attempts < maxAttempts_;
            if (retryable && !stopped_ &&
                requeueCrashed(rec.ticket, pj->second)) {
                // Same ticket goes back in the ring on a fresh
                // worker; no result surfaces for this attempt.
                ++pj->second.attempts;
                ++crashRetries_;
                mRetries_.inc();
            } else {
                Result crashed;
                crashed.ticket = rec.ticket;
                if (!condemned && pj != pending_.end() &&
                    maxAttempts_ > 1 &&
                    pj->second.attempts >= maxAttempts_) {
                    crashed.status = JobStatus::Poisoned;
                    crashed.payload =
                        "job crashed " +
                        std::to_string(pj->second.attempts) +
                        " workers (" + how +
                        "); poisoned, not retried";
                    mPoisoned_.inc();
                } else {
                    crashed.status = JobStatus::Crashed;
                    crashed.payload = how;
                }
                pending_.erase(rec.ticket);
                out.push_back(std::move(crashed));
                if (inFlight_)
                    --inFlight_;
            }
        }

        if (!stopped_) {
            spawnWorker(i);
            ++respawns_;
            SS_WARN("proc pool worker ", i,
                    " died; respawned as pid ", workers_[i].pid);
        }
    }
}

std::vector<ProcPool::Result>
ProcPool::poll(int timeout_ms)
{
    std::vector<Result> out;
    if (!shm_)
        return out;

    auto nowMs = [] {
        timespec ts{};
        ::clock_gettime(CLOCK_MONOTONIC, &ts);
        return static_cast<std::int64_t>(ts.tv_sec) * 1000 +
               ts.tv_nsec / 1000000;
    };
    const std::int64_t deadline =
        timeout_ms > 0 ? nowMs() + timeout_ms : 0;

    for (;;) {
        std::vector<pollfd> fds;
        std::vector<unsigned> owner;
        // A worker whose pipe already hit EOF but whose pid has not
        // been reaped yet: signal delivery can lag the pipe HUP, so
        // the death is only observable via waitpid a beat later.
        bool awaitingReap = false;
        for (unsigned i = 0; i < workers_.size(); ++i) {
            if (workers_[i].pipeFd >= 0) {
                fds.push_back(
                    {workers_[i].pipeFd, POLLIN, 0});
                owner.push_back(i);
            } else if (workers_[i].pid > 0) {
                awaitingReap = true;
            }
        }
        if (fds.empty() && !awaitingReap) {
            reapAndRespawn(out);
            return out;
        }

        // Bounded poll even in "forever" mode so worker deaths
        // (observed via waitpid, not the pipe) are noticed promptly.
        int remaining = 200;
        if (timeout_ms == 0) {
            remaining = 0;
        } else if (timeout_ms > 0) {
            std::int64_t left = deadline - nowMs();
            remaining = left > 0 ? static_cast<int>(
                                       std::min<std::int64_t>(left, 200))
                                 : 0;
        }

        if (!fds.empty()) {
            int rc = ::poll(fds.data(), fds.size(), remaining);
            if (rc > 0) {
                for (std::size_t k = 0; k < fds.size(); ++k) {
                    if (!(fds[k].revents &
                          (POLLIN | POLLHUP | POLLERR)))
                        continue;
                    Worker &w = workers_[owner[k]];
                    char buf[16 * 1024];
                    bool eof = false;
                    for (;;) {
                        ssize_t n =
                            ::read(w.pipeFd, buf, sizeof(buf));
                        if (n > 0) {
                            w.buf.append(
                                buf, static_cast<std::size_t>(n));
                            continue;
                        }
                        eof = (n == 0);
                        break;
                    }
                    drainFrames(w, out);
                    // EOF means the worker is gone (or going): close
                    // now so this fd can't wake ::poll again and burn
                    // the caller's timeout budget spinning on HUPs.
                    if (eof) {
                        ::close(w.pipeFd);
                        w.pipeFd = -1;
                    }
                }
            }
        } else if (remaining > 0) {
            // Only EOF'd-but-unreaped workers remain: wait in short
            // beats for the kernel to finish the death, rather than
            // returning early or spinning on waitpid.
            ::poll(nullptr, 0, std::min(remaining, 10));
        }
        reapAndRespawn(out);

        if (!out.empty() || timeout_ms == 0)
            return out;
        if (timeout_ms > 0 && nowMs() >= deadline)
            return out;
    }
}

std::vector<ProcPool::Result>
ProcPool::runBatch(const std::vector<std::string> &payloads)
{
    std::vector<std::uint64_t> tickets;
    tickets.reserve(payloads.size());
    for (const std::string &p : payloads) {
        std::string err;
        std::uint64_t t = submit(p, err);
        if (!t) {
            Result r;
            r.status = JobStatus::Failed;
            r.payload = err;
            tickets.push_back(0);
            continue;
        }
        tickets.push_back(t);
    }

    std::vector<Result> got;
    std::size_t want = 0;
    for (std::uint64_t t : tickets)
        if (t)
            ++want;
    while (got.size() < want) {
        std::vector<Result> batch = poll(-1);
        if (batch.empty() && workerCount() == 0)
            break;  // everything dead and nothing respawnable
        for (Result &r : batch)
            got.push_back(std::move(r));
    }

    // Submission order; failed submissions resolve inline.
    std::vector<Result> ordered;
    ordered.reserve(payloads.size());
    for (std::size_t i = 0; i < payloads.size(); ++i) {
        Result r;
        if (!tickets[i]) {
            r.status = JobStatus::Failed;
            r.payload = "submit failed";
        } else {
            for (Result &g : got) {
                if (g.ticket == tickets[i]) {
                    r = std::move(g);
                    break;
                }
            }
        }
        ordered.push_back(std::move(r));
    }
    return ordered;
}

std::vector<int>
ProcPool::resultFds() const
{
    std::vector<int> fds;
    for (const Worker &w : workers_)
        if (w.pipeFd >= 0)
            fds.push_back(w.pipeFd);
    return fds;
}

std::vector<int>
ProcPool::workerPids() const
{
    std::vector<int> pids;
    for (const Worker &w : workers_)
        if (w.pid > 0)
            pids.push_back(w.pid);
    return pids;
}

std::size_t
ProcPool::queueDepth() const
{
    if (!shm_)
        return 0;
    lockRobust(&shm_->mu);
    std::size_t n = 0;
    for (const Slot &s : shm_->slots)
        if (s.state == SlotQueued)
            ++n;
    pthread_mutex_unlock(&shm_->mu);
    return n;
}

unsigned
ProcPool::workerCount() const
{
    unsigned n = 0;
    for (const Worker &w : workers_)
        if (w.pid > 0)
            ++n;
    return n;
}

} // namespace specslice::sim
