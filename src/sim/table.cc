#include "sim/table.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "common/logging.hh"

namespace specslice::sim
{

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
}

void
Table::addRow(std::vector<std::string> cells)
{
    SS_ASSERT(cells.size() == headers_.size(),
              "row has ", cells.size(), " cells, expected ",
              headers_.size());
    rows_.push_back(std::move(cells));
}

std::string
Table::render() const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    std::ostringstream os;
    auto emit = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << (c == 0 ? "" : "  ");
            // Left-align the first column, right-align the rest.
            if (c == 0) {
                os << row[c]
                   << std::string(widths[c] - row[c].size(), ' ');
            } else {
                os << std::string(widths[c] - row[c].size(), ' ')
                   << row[c];
            }
        }
        os << '\n';
    };

    emit(headers_);
    std::size_t total = 0;
    for (std::size_t c = 0; c < widths.size(); ++c)
        total += widths[c] + (c ? 2 : 0);
    os << std::string(total, '-') << '\n';
    for (const auto &row : rows_)
        emit(row);
    return os.str();
}

std::string
Table::fmt(double v, int precision)
{
    // NaN/inf means "no data" (e.g. a ratio over a zero denominator)
    // — print n/a, not a fake number.
    if (!std::isfinite(v))
        return "n/a";
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

std::string
Table::pct(double ratio, int precision)
{
    if (!std::isfinite(ratio))
        return "n/a";
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f%%", precision, ratio * 100.0);
    return buf;
}

std::string
Table::count(std::uint64_t v)
{
    return std::to_string(v);
}

std::string
Table::kilo(std::uint64_t v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f",
                  precision, static_cast<double>(v) / 1e3);
    return buf;
}

std::string
Table::mega(std::uint64_t v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f",
                  precision, static_cast<double>(v) / 1e6);
    return buf;
}

} // namespace specslice::sim
