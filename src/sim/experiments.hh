/**
 * @file
 * The experiment library: each of the paper's evaluation artifacts
 * (Table 2, Figure 1, Figure 11, Table 4) as a reusable function that
 * takes a machine configuration and a benchmark name and returns the
 * row's data. The bench/ binaries are thin formatters over these, and
 * the integration tests exercise them directly.
 */

#ifndef SPECSLICE_SIM_EXPERIMENTS_HH
#define SPECSLICE_SIM_EXPERIMENTS_HH

#include <optional>
#include <string>

#include "profile/pde_profile.hh"
#include "sim/simulator.hh"
#include "sim/workload.hh"

namespace specslice::sim
{

class ResultCache;

/** Common run-length knobs for all experiments. */
struct ExperimentConfig
{
    std::uint64_t measureInsts = 300'000;
    std::uint64_t warmupInsts = 100'000;
    std::uint64_t seed = 1;
    /**
     * Optional content-addressed result store (bench --cache DIR,
     * shared with the sweep service's .sscache). When set, every
     * experiment-library simulation goes through cachedRun: a hit
     * restores the full RunResult without simulating, a miss runs and
     * commits. Not owned.
     */
    ResultCache *cache = nullptr;

    std::uint64_t
    workloadScale() const
    {
        return (measureInsts + warmupInsts) * 2;
    }

    RunOptions
    runOptions(bool profile = false) const
    {
        RunOptions o;
        o.maxMainInstructions = measureInsts;
        o.warmupInstructions = warmupInsts;
        o.profile = profile;
        return o;
    }
};

/** Percent speedup of `other` over `base` (by cycle count). */
double speedupPct(const RunResult &base, const RunResult &other);

/**
 * Run `wl` on `simr` (built from `machine`) — or serve the result from
 * cfg.cache when an entry keyed by (workload, machine, opts, slices,
 * binary) exists. A corrupt cached payload is re-simulated, never
 * served. With cfg.cache unset this is exactly simr.run/runBaseline.
 */
RunResult cachedRun(const MachineConfig &machine, Simulator &simr,
                    const Workload &wl, const ExperimentConfig &cfg,
                    const RunOptions &opts, bool with_slices);

/** Build the named workload at the experiment's scale/seed. */
Workload buildBenchWorkload(const std::string &name,
                            const ExperimentConfig &cfg);

// ---------------------------------------------------------------
// Table 2: problem-instruction coverage of PDEs.
// ---------------------------------------------------------------
struct Table2Row
{
    std::string program;
    profile::ProblemInstructions problem;
    /** Too few misses to report memory-side numbers (eon's case). */
    bool insufficientMisses = false;
};

Table2Row runTable2Row(const MachineConfig &machine,
                       const std::string &benchmark,
                       const ExperimentConfig &cfg);

// ---------------------------------------------------------------
// Figure 1: baseline vs problem-perfect vs all-perfect IPC.
// ---------------------------------------------------------------
struct Figure1Row
{
    std::string program;
    double baselineIpc = 0;
    double problemPerfectIpc = 0;
    double allPerfectIpc = 0;
};

Figure1Row runFigure1Row(const MachineConfig &machine,
                         const std::string &benchmark,
                         const ExperimentConfig &cfg);

// ---------------------------------------------------------------
// Figure 11: slice-assisted speedup + constrained limit study.
// ---------------------------------------------------------------
struct Figure11Row
{
    std::string program;
    RunResult base;
    RunResult sliced;
    RunResult limit;

    double slicePct() const;
    double limitPct() const;
};

Figure11Row runFigure11Row(const MachineConfig &machine,
                           const std::string &benchmark,
                           const ExperimentConfig &cfg);

/** Run options that magically perfect the slice-covered PCs. */
RunOptions limitOptions(const Workload &wl, const ExperimentConfig &cfg);

// ---------------------------------------------------------------
// Table 4: detailed base vs base+slices characterization.
// ---------------------------------------------------------------
struct Table4Row
{
    std::string program;
    RunResult base;
    RunResult sliced;
    double speedupPercent = 0;
    double mispredRemovedPct = 0;
    double missRemovedPct = 0;
    double latePct = 0;
    /** Fraction of the (limit-decomposed) speedup due to loads. */
    double loadFraction = 0;
};

/**
 * @return the Table 4 row, or nullopt if the benchmark has no slices
 * or its speedup is below min_speedup_pct (the paper's table keeps
 * only the non-trivial speedups).
 */
std::optional<Table4Row> runTable4Row(const MachineConfig &machine,
                                      const std::string &benchmark,
                                      const ExperimentConfig &cfg,
                                      double min_speedup_pct = 2.0);

} // namespace specslice::sim

#endif // SPECSLICE_SIM_EXPERIMENTS_HH
