#include "sim/job_pool.hh"

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <utility>

#include "common/failure.hh"
#include "common/logging.hh"

namespace specslice::sim
{

const char *
jobStateName(JobState state)
{
    switch (state) {
      case JobState::Ok:
        return "ok";
      case JobState::Failed:
        return "failed";
      case JobState::TimedOut:
        return "timed_out";
    }
    return "unknown";
}

namespace
{

using SteadyClock = std::chrono::steady_clock;

/**
 * Process-wide deadline watcher: one thread, lazily started, that
 * raises each registered job's cancellation flag when its deadline
 * passes. Leaked on purpose — a detached watcher must not race static
 * destruction at process exit.
 */
class DeadlineMonitor
{
  public:
    static DeadlineMonitor &
    instance()
    {
        static DeadlineMonitor *mon = new DeadlineMonitor;
        return *mon;
    }

    std::uint64_t
    add(SteadyClock::time_point deadline,
        std::shared_ptr<std::atomic<bool>> flag)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (!started_) {
            started_ = true;
            std::thread([this] { loop(); }).detach();
        }
        std::uint64_t id = next_++;
        entries_.emplace(id, Entry{deadline, std::move(flag)});
        cv_.notify_one();
        return id;
    }

    void
    remove(std::uint64_t id)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        entries_.erase(id);
    }

  private:
    struct Entry
    {
        SteadyClock::time_point deadline;
        std::shared_ptr<std::atomic<bool>> flag;
    };

    [[noreturn]] void
    loop()
    {
        std::unique_lock<std::mutex> lock(mutex_);
        for (;;) {
            if (entries_.empty()) {
                cv_.wait(lock);
                continue;
            }
            auto earliest = SteadyClock::time_point::max();
            for (const auto &[id, e] : entries_)
                earliest = std::min(earliest, e.deadline);
            cv_.wait_until(lock, earliest);
            auto now = SteadyClock::now();
            for (auto it = entries_.begin(); it != entries_.end();) {
                if (it->second.deadline <= now) {
                    it->second.flag->store(true,
                                           std::memory_order_relaxed);
                    it = entries_.erase(it);
                } else {
                    ++it;
                }
            }
        }
    }

    std::mutex mutex_;
    std::condition_variable cv_;
    std::map<std::uint64_t, Entry> entries_;
    std::uint64_t next_ = 1;
    bool started_ = false;
};

} // namespace

namespace settle_detail
{

void
runSettled(const SettleOptions &opts, JobStatus &status,
           const std::function<void()> &body)
{
    auto t0 = SteadyClock::now();
    bool deadlined = opts.deadlineSeconds > 0.0;
    unsigned max_attempts = 1 + (deadlined ? opts.timeoutRetries : 0);

    status = JobStatus{};
    for (unsigned attempt = 1; attempt <= max_attempts; ++attempt) {
        status.attempts = attempt;

        // One flag per attempt (shared with the monitor so a late
        // firing after this attempt ends cannot touch freed memory).
        auto flag = std::make_shared<std::atomic<bool>>(false);
        std::uint64_t watch_id = 0;
        if (deadlined) {
            auto deadline =
                SteadyClock::now() +
                std::chrono::duration_cast<SteadyClock::duration>(
                    std::chrono::duration<double>(
                        opts.deadlineSeconds));
            watch_id =
                DeadlineMonitor::instance().add(deadline, flag);
        }

        ScopedCancelFlag cancel(flag.get());
        ScopedThrowErrors throwing;
        try {
            body();
            if (watch_id)
                DeadlineMonitor::instance().remove(watch_id);
            status.state = JobState::Ok;
            status.error.clear();
            break;
        } catch (const SimError &e) {
            if (watch_id)
                DeadlineMonitor::instance().remove(watch_id);
            status.error = e.what();
            if (e.kind() == SimError::Kind::Timeout) {
                status.state = JobState::TimedOut;
                continue;  // retry if attempts remain
            }
            status.state = JobState::Failed;
            break;
        } catch (const std::exception &e) {
            if (watch_id)
                DeadlineMonitor::instance().remove(watch_id);
            status.state = JobState::Failed;
            status.error = e.what();
            break;
        } catch (...) {
            if (watch_id)
                DeadlineMonitor::instance().remove(watch_id);
            status.state = JobState::Failed;
            status.error = "unknown exception";
            break;
        }
    }

    status.wallSeconds =
        std::chrono::duration<double>(SteadyClock::now() - t0).count();
}

} // namespace settle_detail

unsigned
JobPool::defaultJobs()
{
    if (const char *v = std::getenv("SS_JOBS")) {
        char *end = nullptr;
        errno = 0;
        unsigned long parsed = std::strtoul(v, &end, 10);
        bool bad = *v == '\0' || v[0] == '-' || end == nullptr ||
                   *end != '\0' || errno == ERANGE || parsed == 0 ||
                   parsed > 4096;
        if (bad) {
            std::fprintf(stderr,
                         "error: SS_JOBS='%s' is not a job count in "
                         "[1, 4096]\n",
                         v);
            std::exit(2);
        }
        return static_cast<unsigned>(parsed);
    }
    unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

JobPool::JobPool(unsigned jobs) : jobs_(jobs ? jobs : defaultJobs())
{
    // jobs_ == 1 runs tasks inline in submit(): no workers, and the
    // pool degenerates to exactly the serial execution order.
    if (jobs_ < 2)
        return;
    workers_.reserve(jobs_);
    for (unsigned i = 0; i < jobs_; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

JobPool::~JobPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    cv_.notify_all();
    for (std::thread &w : workers_)
        w.join();
}

std::future<void>
JobPool::submit(std::function<void()> fn)
{
    // Wrap the task so its log/trace output is tagged with the job's
    // submission index and captured; buffers are flushed in submission
    // order, so the bytes hitting stderr do not depend on the worker
    // count. The inline (jobs_ < 2) path runs the same wrapper, which
    // makes `--jobs 1` output identical to a parallel run's.
    long index = submitted_.fetch_add(1, std::memory_order_relaxed);
    std::packaged_task<void()> task(
        [this, index, fn = std::move(fn)]() {
            std::string buffered;
            try {
                ScopedJobTag tag(index, &buffered);
                fn();
            } catch (...) {
                completeOutput(index, std::move(buffered));
                throw;
            }
            completeOutput(index, std::move(buffered));
        });
    std::future<void> fut = task.get_future();
    if (jobs_ < 2) {
        task();  // inline: exceptions land in the future
        return fut;
    }
    {
        std::lock_guard<std::mutex> lock(mutex_);
        queue_.push_back(std::move(task));
    }
    cv_.notify_one();
    return fut;
}

void
JobPool::completeOutput(long index, std::string &&buffered)
{
    std::lock_guard<std::mutex> lock(outMutex_);
    if (index != outNext_) {
        outPending_.emplace(index, std::move(buffered));
        return;
    }
    ScopedJobTag::writeCaptured(buffered);
    ++outNext_;
    for (auto it = outPending_.begin();
         it != outPending_.end() && it->first == outNext_;
         it = outPending_.erase(it)) {
        ScopedJobTag::writeCaptured(it->second);
        ++outNext_;
    }
}

void
JobPool::workerLoop()
{
    for (;;) {
        std::packaged_task<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            cv_.wait(lock,
                     [this] { return stopping_ || !queue_.empty(); });
            if (queue_.empty())
                return;  // stopping and drained
            task = std::move(queue_.front());
            queue_.pop_front();
        }
        task();
    }
}

} // namespace specslice::sim
