#include "sim/job_pool.hh"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <utility>

#include "common/logging.hh"

namespace specslice::sim
{

unsigned
JobPool::defaultJobs()
{
    if (const char *v = std::getenv("SS_JOBS")) {
        char *end = nullptr;
        errno = 0;
        unsigned long parsed = std::strtoul(v, &end, 10);
        bool bad = *v == '\0' || v[0] == '-' || end == nullptr ||
                   *end != '\0' || errno == ERANGE || parsed == 0 ||
                   parsed > 4096;
        if (bad) {
            std::fprintf(stderr,
                         "error: SS_JOBS='%s' is not a job count in "
                         "[1, 4096]\n",
                         v);
            std::exit(2);
        }
        return static_cast<unsigned>(parsed);
    }
    unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

JobPool::JobPool(unsigned jobs) : jobs_(jobs ? jobs : defaultJobs())
{
    // jobs_ == 1 runs tasks inline in submit(): no workers, and the
    // pool degenerates to exactly the serial execution order.
    if (jobs_ < 2)
        return;
    workers_.reserve(jobs_);
    for (unsigned i = 0; i < jobs_; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

JobPool::~JobPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    cv_.notify_all();
    for (std::thread &w : workers_)
        w.join();
}

std::future<void>
JobPool::submit(std::function<void()> fn)
{
    // Wrap the task so its log/trace output is tagged with the job's
    // submission index and captured; buffers are flushed in submission
    // order, so the bytes hitting stderr do not depend on the worker
    // count. The inline (jobs_ < 2) path runs the same wrapper, which
    // makes `--jobs 1` output identical to a parallel run's.
    long index = submitted_.fetch_add(1, std::memory_order_relaxed);
    std::packaged_task<void()> task(
        [this, index, fn = std::move(fn)]() {
            std::string buffered;
            try {
                ScopedJobTag tag(index, &buffered);
                fn();
            } catch (...) {
                completeOutput(index, std::move(buffered));
                throw;
            }
            completeOutput(index, std::move(buffered));
        });
    std::future<void> fut = task.get_future();
    if (jobs_ < 2) {
        task();  // inline: exceptions land in the future
        return fut;
    }
    {
        std::lock_guard<std::mutex> lock(mutex_);
        queue_.push_back(std::move(task));
    }
    cv_.notify_one();
    return fut;
}

void
JobPool::completeOutput(long index, std::string &&buffered)
{
    std::lock_guard<std::mutex> lock(outMutex_);
    if (index != outNext_) {
        outPending_.emplace(index, std::move(buffered));
        return;
    }
    ScopedJobTag::writeCaptured(buffered);
    ++outNext_;
    for (auto it = outPending_.begin();
         it != outPending_.end() && it->first == outNext_;
         it = outPending_.erase(it)) {
        ScopedJobTag::writeCaptured(it->second);
        ++outNext_;
    }
}

void
JobPool::workerLoop()
{
    for (;;) {
        std::packaged_task<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            cv_.wait(lock,
                     [this] { return stopping_ || !queue_.empty(); });
            if (queue_.empty())
                return;  // stopping and drained
            task = std::move(queue_.front());
            queue_.pop_front();
        }
        task();
    }
}

} // namespace specslice::sim
