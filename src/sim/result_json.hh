/**
 * @file
 * RunResult <-> JSON.
 *
 * Two kinds of documents share this file:
 *
 *  - The per-workload *record* (perfRecord): the stable, human-facing
 *    row emitted by specslice_run --json and BENCH_*.json. Moved here
 *    from bench/bench_common.hh so the sweep service renders the exact
 *    same bytes. Wall-clock fields are omittable (includeWall=false /
 *    --no-wall) because they are nondeterministic and would break the
 *    byte-identity contract between served and direct runs.
 *
 *  - The *full* result document (resultToJson/resultFromJson): a
 *    lossless round-trip of RunResult used as the result-cache payload
 *    and the service's worker->parent wire format. It carries every
 *    named counter, the detail StatGroup, intervals, the per-PC
 *    profile, and checker/sampling provenance, so a cache hit is
 *    indistinguishable from a fresh simulation to every consumer.
 */

#ifndef SPECSLICE_SIM_RESULT_JSON_HH
#define SPECSLICE_SIM_RESULT_JSON_HH

#include <string>

#include "check/digest.hh"
#include "common/jsonio.hh"
#include "core/smt_core.hh"

namespace specslice::sim
{

// Same facade aliases simulator.hh declares (redeclaration of an
// identical alias is well-formed), so this header stands alone.
using RunResult = core::RunResult;
using SimOutcome = core::SimOutcome;
using core::outcomeName;

/**
 * Version of the machine-readable result documents (BENCH_*.json,
 * specslice_run --json, sweep-service responses). History lives in
 * bench/bench_common.hh next to the benchSchemaVersion alias.
 */
constexpr std::uint64_t resultSchemaVersion = 6;

/** One workload's timed simulation, as recorded by a bench binary. */
struct WorkloadPerf
{
    std::string name;
    RunResult result;
    double wallSeconds = 0.0;

    double
    instsPerSec() const
    {
        return wallSeconds > 0.0
                   ? static_cast<double>(result.mainRetired) /
                         wallSeconds
                   : 0.0;
    }
};

/**
 * The per-workload record shared by --json and BENCH_*.json.
 * @param include_wall emit the wall_seconds / sim_insts_per_sec
 *        fields; pass false for deterministic (cacheable, diffable)
 *        documents.
 */
json::JsonObject perfRecord(const WorkloadPerf &p,
                            bool include_wall = true);

/**
 * One golden-digest section for a finished run: the exact counter set
 * specslice_verify commits to golden/ (every top-level counter, every
 * "detail."-prefixed subsystem counter, the ipc ratio). Shared by the
 * verify tool and specslice_replay --sim so a trace-mode digest is
 * built from the same fields as the execution-mode corpus.
 */
check::Digest::Section digestSection(const std::string &config,
                                     const RunResult &r);

/** Render a RunResult as a lossless single-line JSON object. */
std::string resultToJson(const RunResult &r);

/**
 * Rebuild a RunResult from resultToJson output. @return false (and
 * set error) on a structurally unusable document; unknown fields are
 * ignored so newer writers stay readable.
 */
bool resultFromJson(const json::Value &doc, RunResult &out,
                    std::string &error);

} // namespace specslice::sim

#endif // SPECSLICE_SIM_RESULT_JSON_HH
