/**
 * @file
 * Canonical cache keys for simulation results and checkpoints.
 *
 * A key must change whenever anything that could change the simulated
 * numbers changes — workload identity (name, scale, seed, program
 * bytes), every MachineConfig knob, every result-affecting RunOptions
 * field, whether slices run, the result-document schema, and the
 * simulator binary itself — and must NOT change across process
 * restarts or between the server and a client built from the same
 * binary. The implementation therefore renders an explicit, ordered
 * "field = value" text block (canonicalKeyText, kept human-readable
 * for debugging cache misses) and hashes it with SHA-256 together
 * with the running binary's fingerprint.
 *
 * Observation-only RunOptions (interval sinks, event buffers, trace
 * flags) are deliberately excluded: they change what is *recorded*,
 * never what *happens*, and including them would shatter the cache
 * across equivalent runs. The intervalCycles window length IS
 * included because RunResult::intervals is part of the cached
 * payload.
 *
 * The same construction keys specslice_verify's cached checkpoints
 * (checkpointCacheKey): the key lands in the checkpoint's filename,
 * so a changed binary, program, or fast-forward depth produces a
 * different name and the stale file is simply never opened again —
 * invalidation by construction, with no sidecar metadata to desync.
 */

#ifndef SPECSLICE_SIM_RUN_KEY_HH
#define SPECSLICE_SIM_RUN_KEY_HH

#include <string>

#include "sim/simulator.hh"
#include "sim/workload.hh"

namespace specslice::sim
{

/** Everything that identifies one simulation request. */
struct RunKeyInputs
{
    const Workload *workload = nullptr;
    /** The workloads::Params seed the workload was built with (the
     *  program fingerprint alone can miss data-only seed effects). */
    std::uint64_t dataSeed = 0;
    const MachineConfig *config = nullptr;
    const RunOptions *options = nullptr;
    bool withSlices = false;
};

/**
 * The ordered "field = value" rendering of every key component except
 * the binary fingerprint (appended by runCacheKey so the text stays
 * stable across rebuilds for diffing).
 */
std::string canonicalKeyText(const RunKeyInputs &in);

/** 64 hex chars: SHA-256(canonicalKeyText + binary fingerprint). */
std::string runCacheKey(const RunKeyInputs &in);

/**
 * Short (16 hex chars) key for a cached fast-forward checkpoint of
 * `wl` at instruction `fastforward`: workload identity + program
 * bytes + fast-forward depth + checkpoint format version + binary
 * fingerprint. Used as a filename component.
 */
std::string checkpointCacheKey(const Workload &wl,
                               std::uint64_t data_seed,
                               std::uint64_t fastforward);

} // namespace specslice::sim

#endif // SPECSLICE_SIM_RUN_KEY_HH
