/**
 * @file
 * The public simulation facade: build a machine from a MachineConfig,
 * run a Workload, get a RunResult. Each run() uses fresh machine and
 * memory state so runs are independent and reproducible.
 *
 * Sampled runs: when RunOptions carries sampling state (fast-forward,
 * multiple regions, or a checkpoint to restore/save), run() drives an
 * arch::FastForward engine along the pristine architectural stream and
 * executes each timing region on a clone of the engine's state. The
 * clone matters: this core executes functionally at fetch, so a timing
 * run mutates its memory image ahead of retirement and can never share
 * state with the sampling stream. Region results are aggregated by
 * summing counters (IPC is then total-retired / total-cycles) and
 * taking the worst outcome.
 */

#ifndef SPECSLICE_SIM_SIMULATOR_HH
#define SPECSLICE_SIM_SIMULATOR_HH

#include "common/failure.hh"
#include "core/smt_core.hh"
#include "sim/workload.hh"

namespace specslice::sim
{

using MachineConfig = core::CoreConfig;
using RunOptions = core::RunOptions;
using RunResult = core::RunResult;
using SimOutcome = core::SimOutcome;
using core::outcomeName;
/** The typed exception panic()/fatal() raise under ScopedThrowErrors
 *  (defined in common/failure.hh; aliased here as the sim-facade
 *  name tools catch around Simulator::run). */
using SimError = specslice::SimError;

class Simulator
{
  public:
    explicit Simulator(const MachineConfig &cfg) : cfg_(cfg) {}

    /**
     * Simulate a workload. Dispatches to the sampling orchestrator
     * when opts carries sampling state (see the file comment).
     * @param with_slices load and execute the workload's speculative
     *        slices (overrides cfg.slicesEnabled for this run)
     */
    RunResult run(const Workload &wl, const RunOptions &opts,
                  bool with_slices);

    /** Convenience: baseline run (no slices). */
    RunResult
    runBaseline(const Workload &wl, const RunOptions &opts)
    {
        return run(wl, opts, false);
    }

    /** @return true if opts requests the sampling orchestrator. */
    static bool
    sampled(const RunOptions &opts)
    {
        return opts.fastForwardInstructions != 0 ||
               opts.sampleRegions > 1 ||
               !opts.restoreCheckpoint.empty() ||
               !opts.saveCheckpoint.empty();
    }

    const MachineConfig &config() const { return cfg_; }

  private:
    struct RegionStart;

    /** One detailed timing run (from entry or a region snapshot). */
    RunResult runOne(const Workload &wl, const RunOptions &opts,
                     bool with_slices, const RegionStart *region);
    /** Fast-forward + sampled-region orchestration. */
    RunResult runSampled(const Workload &wl, const RunOptions &opts,
                         bool with_slices);

    MachineConfig cfg_;
};

} // namespace specslice::sim

#endif // SPECSLICE_SIM_SIMULATOR_HH
