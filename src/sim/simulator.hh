/**
 * @file
 * The public simulation facade: build a machine from a MachineConfig,
 * run a Workload, get a RunResult. Each run() uses fresh machine and
 * memory state so runs are independent and reproducible.
 */

#ifndef SPECSLICE_SIM_SIMULATOR_HH
#define SPECSLICE_SIM_SIMULATOR_HH

#include "common/failure.hh"
#include "core/smt_core.hh"
#include "sim/workload.hh"

namespace specslice::sim
{

using MachineConfig = core::CoreConfig;
using RunOptions = core::RunOptions;
using RunResult = core::RunResult;
using SimOutcome = core::SimOutcome;
using core::outcomeName;
/** The typed exception panic()/fatal() raise under ScopedThrowErrors
 *  (defined in common/failure.hh; aliased here as the sim-facade
 *  name tools catch around Simulator::run). */
using SimError = specslice::SimError;

class Simulator
{
  public:
    explicit Simulator(const MachineConfig &cfg) : cfg_(cfg) {}

    /**
     * Simulate a workload.
     * @param with_slices load and execute the workload's speculative
     *        slices (overrides cfg.slicesEnabled for this run)
     */
    RunResult run(const Workload &wl, const RunOptions &opts,
                  bool with_slices);

    /** Convenience: baseline run (no slices). */
    RunResult
    runBaseline(const Workload &wl, const RunOptions &opts)
    {
        return run(wl, opts, false);
    }

    const MachineConfig &config() const { return cfg_; }

  private:
    MachineConfig cfg_;
};

} // namespace specslice::sim

#endif // SPECSLICE_SIM_SIMULATOR_HH
