/**
 * @file
 * A fixed-size thread pool for running independent experiment rows in
 * parallel. Every Simulator::run owns its machine and memory state, so
 * a sweep over benchmarks (or over independent configurations) is
 * embarrassingly parallel; the pool supplies the workers and the
 * ordering discipline that keeps sweep output byte-identical to a
 * serial run:
 *
 *  - results are returned in submission order (map() fills a slot per
 *    item; callers format/print only after the whole batch is done);
 *  - log/trace lines a job emits (SS_WARN, SS_INFORM, SS_DTRACE) are
 *    captured per job via ScopedJobTag, prefixed with the job's
 *    submission index ("[jN] "), and flushed to stderr in submission
 *    order as jobs complete — so sweep output is byte-identical no
 *    matter the worker count;
 *  - exceptions thrown by a job are captured and rethrown from the
 *    submitting thread (the first one in submission order, after all
 *    jobs of the batch have finished);
 *  - a pool with one job runs tasks inline on the submitting thread,
 *    so `--jobs 1` is exactly the serial execution.
 *
 * The job count comes from (in priority order) an explicit
 * constructor argument (the `--jobs N` flag of the bench drivers and
 * specslice_run), the SS_JOBS environment variable, and
 * hardware_concurrency.
 */

#ifndef SPECSLICE_SIM_JOB_POOL_HH
#define SPECSLICE_SIM_JOB_POOL_HH

#include <atomic>
#include <condition_variable>
#include <deque>
#include <exception>
#include <functional>
#include <future>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <type_traits>
#include <vector>

namespace specslice::sim
{

class JobPool
{
  public:
    /** @param jobs worker count; 0 selects defaultJobs(). */
    explicit JobPool(unsigned jobs = 0);
    ~JobPool();

    JobPool(const JobPool &) = delete;
    JobPool &operator=(const JobPool &) = delete;

    /** The worker count this pool runs with (>= 1). */
    unsigned jobs() const { return jobs_; }

    /**
     * The job count used when none is given explicitly: SS_JOBS if
     * set (validated; exits with a message on garbage), otherwise
     * hardware_concurrency (at least 1). Read per call so tests can
     * vary the environment.
     */
    static unsigned defaultJobs();

    /**
     * Enqueue one task. The returned future becomes ready when the
     * task finishes; a thrown exception is delivered through get().
     * With jobs() == 1 the task runs inline before submit returns.
     */
    std::future<void> submit(std::function<void()> fn);

    /**
     * Run fn over every item and return the results in item order,
     * regardless of completion order. All jobs of the batch are
     * waited for before returning; if any threw, the first exception
     * (in submission order) is rethrown.
     */
    template <typename Item, typename Fn>
    auto
    map(const std::vector<Item> &items, Fn fn)
        -> std::vector<std::invoke_result_t<Fn &, const Item &>>
    {
        using R = std::invoke_result_t<Fn &, const Item &>;
        std::vector<std::optional<R>> slots(items.size());
        std::vector<std::future<void>> done;
        done.reserve(items.size());
        for (std::size_t i = 0; i < items.size(); ++i) {
            done.push_back(submit([&slots, &items, &fn, i] {
                slots[i].emplace(fn(items[i]));
            }));
        }
        // Drain every future before rethrowing so no worker can still
        // be touching slots when the batch storage goes away.
        std::exception_ptr first;
        for (auto &f : done) {
            try {
                f.get();
            } catch (...) {
                if (!first)
                    first = std::current_exception();
            }
        }
        if (first)
            std::rethrow_exception(first);

        std::vector<R> out;
        out.reserve(slots.size());
        for (auto &s : slots)
            out.push_back(std::move(*s));
        return out;
    }

  private:
    void workerLoop();

    /**
     * Record job `index`'s captured log output as complete and flush
     * the contiguous prefix of completed buffers (in submission
     * order) to stderr.
     */
    void completeOutput(long index, std::string &&buffered);

    unsigned jobs_;
    std::vector<std::thread> workers_;
    std::deque<std::packaged_task<void()>> queue_;
    std::mutex mutex_;
    std::condition_variable cv_;
    bool stopping_ = false;

    std::atomic<long> submitted_{0};
    std::mutex outMutex_;
    std::map<long, std::string> outPending_;
    long outNext_ = 0;
};

} // namespace specslice::sim

#endif // SPECSLICE_SIM_JOB_POOL_HH
