/**
 * @file
 * A fixed-size thread pool for running independent experiment rows in
 * parallel. Every Simulator::run owns its machine and memory state, so
 * a sweep over benchmarks (or over independent configurations) is
 * embarrassingly parallel; the pool supplies the workers and the
 * ordering discipline that keeps sweep output byte-identical to a
 * serial run:
 *
 *  - results are returned in submission order (map() fills a slot per
 *    item; callers format/print only after the whole batch is done);
 *  - log/trace lines a job emits (SS_WARN, SS_INFORM, SS_DTRACE) are
 *    captured per job via ScopedJobTag, prefixed with the job's
 *    submission index ("[jN] "), and flushed to stderr in submission
 *    order as jobs complete — so sweep output is byte-identical no
 *    matter the worker count;
 *  - exceptions thrown by a job are captured and rethrown from the
 *    submitting thread (the first one in submission order, after all
 *    jobs of the batch have finished);
 *  - a pool with one job runs tasks inline on the submitting thread,
 *    so `--jobs 1` is exactly the serial execution.
 *
 * mapSettled() is the crash-resilient variant for sweeps: each job
 * runs under ScopedThrowErrors (panic()/fatal() in simulation code
 * become catchable SimError), failures are isolated per job and
 * reported in a JobStatus instead of being rethrown, and an optional
 * wall-clock deadline cancels runaway jobs cooperatively (one retry
 * by default). One bad configuration no longer takes down a 24-run
 * sweep.
 *
 * The job count comes from (in priority order) an explicit
 * constructor argument (the `--jobs N` flag of the bench drivers and
 * specslice_run), the SS_JOBS environment variable, and
 * hardware_concurrency.
 */

#ifndef SPECSLICE_SIM_JOB_POOL_HH
#define SPECSLICE_SIM_JOB_POOL_HH

#include <atomic>
#include <condition_variable>
#include <deque>
#include <exception>
#include <functional>
#include <future>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <type_traits>
#include <vector>

namespace specslice::sim
{

/** Terminal state of one settled job. */
enum class JobState
{
    Ok,        ///< ran to completion, value present
    Failed,    ///< threw (SimError from panic/fatal, or any exception)
    TimedOut,  ///< exceeded the wall-clock deadline on every attempt
};

/** Stable lower-case name for JSON/summary output. */
const char *jobStateName(JobState state);

/** What happened to one settled job. */
struct JobStatus
{
    JobState state = JobState::Ok;
    /** Exception message (empty when Ok). */
    std::string error;
    /** Total wall time across all attempts, in seconds. */
    double wallSeconds = 0.0;
    /** Attempts made (> 1 only after a timeout retry). */
    unsigned attempts = 0;
};

/** Per-batch settings for mapSettled(). */
struct SettleOptions
{
    /** Per-job wall-clock deadline in seconds (0 = none). Cancellation
     *  is cooperative: the job must poll cancelRequested() /
     *  throwIfCancelled() (the core's run loop does). */
    double deadlineSeconds = 0.0;
    /** Extra attempts after a timeout (failures never retry). */
    unsigned timeoutRetries = 1;
};

/** Result slot of one mapSettled() item: the value when the job
 *  succeeded, plus its status either way. */
template <typename R>
struct Settled
{
    std::optional<R> value;
    JobStatus status;

    bool ok() const { return status.state == JobState::Ok; }
};

namespace settle_detail
{

/**
 * Run `body` with per-job isolation: ScopedThrowErrors (panic/fatal
 * throw), an optional deadline-armed cancellation flag, and retry on
 * timeout per `opts`. Never throws; the outcome lands in `status`.
 */
void runSettled(const SettleOptions &opts, JobStatus &status,
                const std::function<void()> &body);

} // namespace settle_detail

class JobPool
{
  public:
    /** @param jobs worker count; 0 selects defaultJobs(). */
    explicit JobPool(unsigned jobs = 0);
    ~JobPool();

    JobPool(const JobPool &) = delete;
    JobPool &operator=(const JobPool &) = delete;

    /** The worker count this pool runs with (>= 1). */
    unsigned jobs() const { return jobs_; }

    /**
     * The job count used when none is given explicitly: SS_JOBS if
     * set (validated; exits with a message on garbage), otherwise
     * hardware_concurrency (at least 1). Read per call so tests can
     * vary the environment.
     */
    static unsigned defaultJobs();

    /**
     * Enqueue one task. The returned future becomes ready when the
     * task finishes; a thrown exception is delivered through get().
     * With jobs() == 1 the task runs inline before submit returns.
     */
    std::future<void> submit(std::function<void()> fn);

    /**
     * Run fn over every item and return the results in item order,
     * regardless of completion order. All jobs of the batch are
     * waited for before returning; if any threw, the first exception
     * (in submission order) is rethrown.
     */
    template <typename Item, typename Fn>
    auto
    map(const std::vector<Item> &items, Fn fn)
        -> std::vector<std::invoke_result_t<Fn &, const Item &>>
    {
        using R = std::invoke_result_t<Fn &, const Item &>;
        std::vector<std::optional<R>> slots(items.size());
        std::vector<std::future<void>> done;
        done.reserve(items.size());
        for (std::size_t i = 0; i < items.size(); ++i) {
            done.push_back(submit([&slots, &items, &fn, i] {
                slots[i].emplace(fn(items[i]));
            }));
        }
        // Drain every future before rethrowing so no worker can still
        // be touching slots when the batch storage goes away.
        std::exception_ptr first;
        for (auto &f : done) {
            try {
                f.get();
            } catch (...) {
                if (!first)
                    first = std::current_exception();
            }
        }
        if (first)
            std::rethrow_exception(first);

        std::vector<R> out;
        out.reserve(slots.size());
        for (auto &s : slots)
            out.push_back(std::move(*s));
        return out;
    }

    /**
     * Crash-resilient map: like map(), but each job is isolated — a
     * job that panics, throws, or exceeds the deadline yields a slot
     * with state Failed/TimedOut instead of poisoning the batch. The
     * slot order matches the item order; output-ordering guarantees
     * are the same as map()'s.
     *
     * A job that ignores its cancellation flag can still block the
     * batch past its deadline — the deadline relies on the job
     * polling (simulation runs do; see core::SmtCore::run).
     */
    template <typename Item, typename Fn>
    auto
    mapSettled(const std::vector<Item> &items, Fn fn,
               const SettleOptions &opts = {})
        -> std::vector<Settled<std::invoke_result_t<Fn &, const Item &>>>
    {
        using R = std::invoke_result_t<Fn &, const Item &>;
        std::vector<Settled<R>> out(items.size());
        std::vector<std::future<void>> done;
        done.reserve(items.size());
        for (std::size_t i = 0; i < items.size(); ++i) {
            done.push_back(submit([&out, &items, &fn, &opts, i] {
                Settled<R> &slot = out[i];
                settle_detail::runSettled(opts, slot.status, [&] {
                    slot.value.emplace(fn(items[i]));
                });
                if (slot.status.state != JobState::Ok)
                    slot.value.reset();
            }));
        }
        for (auto &f : done)
            f.get();  // the settle wrapper never throws
        return out;
    }

  private:
    void workerLoop();

    /**
     * Record job `index`'s captured log output as complete and flush
     * the contiguous prefix of completed buffers (in submission
     * order) to stderr.
     */
    void completeOutput(long index, std::string &&buffered);

    unsigned jobs_;
    std::vector<std::thread> workers_;
    std::deque<std::packaged_task<void()>> queue_;
    std::mutex mutex_;
    std::condition_variable cv_;
    bool stopping_ = false;

    std::atomic<long> submitted_{0};
    std::mutex outMutex_;
    std::map<long, std::string> outPending_;
    long outNext_ = 0;
};

} // namespace specslice::sim

#endif // SPECSLICE_SIM_JOB_POOL_HH
