#include "obs/metrics.hh"

#include <atomic>
#include <cinttypes>
#include <cstdio>

#include <sys/mman.h>

#include "common/failure.hh"
#include "common/jsonio.hh"
#include "common/logging.hh"

namespace specslice::obs
{

namespace
{

using Slot = std::atomic<std::uint64_t>;
static_assert(sizeof(Slot) == sizeof(std::uint64_t));

/** Decade-ish bounds from 1us to 10s: fine enough at the fast end
 *  for cache hits, wide enough at the slow end for full compare
 *  simulations. */
constexpr std::uint64_t bounds[MetricsRegistry::numFiniteBuckets] = {
    1,       2,       5,       10,      25,      50,
    100,     250,     500,     1'000,   2'500,   5'000,
    10'000,  25'000,  50'000,  100'000, 250'000, 500'000,
    1'000'000, 2'500'000, 5'000'000, 10'000'000,
};

MetricsRegistry *g_ambient = nullptr;

const char *
kindName(MetricKind k)
{
    switch (k) {
      case MetricKind::Counter:
        return "counter";
      case MetricKind::Gauge:
        return "gauge";
      case MetricKind::Histogram:
        return "histogram";
    }
    return "counter";
}

} // namespace

void
setAmbientMetrics(MetricsRegistry *reg)
{
    g_ambient = reg;
}

MetricsRegistry *
ambientMetrics()
{
    return g_ambient;
}

MetricsRegistry::MetricsRegistry(unsigned processes)
{
    processes_ = processes < 1 ? 1
                 : processes > maxProcesses ? maxProcesses
                                            : processes;
    const std::size_t bytes =
        static_cast<std::size_t>(processes_) * slotsPerPage *
        sizeof(Slot);
    void *mem = ::mmap(nullptr, bytes, PROT_READ | PROT_WRITE,
                       MAP_SHARED | MAP_ANONYMOUS, -1, 0);
    SS_ASSERT(mem != MAP_FAILED, "metrics shared mmap failed");
    pages_ = mem;
    Slot *slots = static_cast<Slot *>(pages_);
    for (std::size_t i = 0;
         i < static_cast<std::size_t>(processes_) * slotsPerPage; ++i)
        new (&slots[i]) Slot(0);
}

MetricsRegistry::~MetricsRegistry()
{
    if (pages_) {
        ::munmap(pages_, static_cast<std::size_t>(processes_) *
                             slotsPerPage * sizeof(Slot));
        pages_ = nullptr;
    }
    if (g_ambient == this)
        g_ambient = nullptr;
}

void
MetricsRegistry::bindProcess(unsigned page)
{
    SS_ASSERT(page < processes_,
              "metrics bindProcess page out of range");
    bound_ = page;
}

std::uint32_t
MetricsRegistry::allocate(MetricKind kind, const std::string &name,
                          const std::string &help, unsigned slots)
{
    auto it = byName_.find(name);
    if (it != byName_.end()) {
        const Def &d = defs_[it->second];
        SS_ASSERT(d.kind == kind, "metric '", name,
                  "' re-registered as a different kind (",
                  kindName(d.kind), " vs ", kindName(kind), ")");
        return d.slot;
    }
    SS_ASSERT(nextSlot_ + slots <= slotsPerPage,
              "metrics page full registering '", name, "'");
    Def d;
    d.kind = kind;
    d.name = name;
    d.help = help;
    d.slot = nextSlot_;
    nextSlot_ += slots;
    byName_.emplace(name, defs_.size());
    defs_.push_back(std::move(d));
    return defs_.back().slot;
}

Counter
MetricsRegistry::counter(const std::string &name,
                         const std::string &help)
{
    return Counter(this, allocate(MetricKind::Counter, name, help, 1));
}

Gauge
MetricsRegistry::gauge(const std::string &name, const std::string &help)
{
    return Gauge(this, allocate(MetricKind::Gauge, name, help, 1));
}

Histogram
MetricsRegistry::histogram(const std::string &name,
                           const std::string &help)
{
    return Histogram(
        this,
        allocate(MetricKind::Histogram, name, help, histogramSlots));
}

namespace
{

inline Slot *
pageSlots(void *pages, unsigned page)
{
    return static_cast<Slot *>(pages) +
           static_cast<std::size_t>(page) *
               MetricsRegistry::slotsPerPage;
}

} // namespace

void
Counter::inc(std::uint64_t n)
{
    if (!reg_)
        return;
    pageSlots(reg_->pages_, reg_->bound_)[slot_].fetch_add(
        n, std::memory_order_relaxed);
}

void
Gauge::set(std::uint64_t v)
{
    if (!reg_)
        return;
    pageSlots(reg_->pages_, reg_->bound_)[slot_].store(
        v, std::memory_order_relaxed);
}

void
Gauge::add(std::uint64_t n)
{
    if (!reg_)
        return;
    pageSlots(reg_->pages_, reg_->bound_)[slot_].fetch_add(
        n, std::memory_order_relaxed);
}

void
Histogram::observe(std::uint64_t usec)
{
    if (!reg_)
        return;
    unsigned b = 0;
    while (b < MetricsRegistry::numFiniteBuckets &&
           usec > MetricsRegistry::bucketBounds()[b])
        ++b;
    Slot *s = pageSlots(reg_->pages_, reg_->bound_) + slot_;
    s[b].fetch_add(1, std::memory_order_relaxed);
    s[MetricsRegistry::numBuckets].fetch_add(
        1, std::memory_order_relaxed);  // count
    s[MetricsRegistry::numBuckets + 1].fetch_add(
        usec, std::memory_order_relaxed);  // sum
}

const std::uint64_t *
MetricsRegistry::bucketBounds()
{
    return bounds;
}

std::uint64_t
MetricsRegistry::sumSlot(std::uint32_t slot) const
{
    std::uint64_t total = 0;
    for (unsigned p = 0; p < processes_; ++p)
        total += pageSlots(pages_, p)[slot].load(
            std::memory_order_relaxed);
    return total;
}

std::uint64_t
MetricsRegistry::value(const std::string &name) const
{
    auto it = byName_.find(name);
    if (it == byName_.end())
        return 0;
    return sumSlot(defs_[it->second].slot);
}

bool
MetricsRegistry::histogramSnapshot(const std::string &name,
                                   HistogramSnapshot &out) const
{
    auto it = byName_.find(name);
    if (it == byName_.end() ||
        defs_[it->second].kind != MetricKind::Histogram)
        return false;
    const std::uint32_t base = defs_[it->second].slot;
    out = HistogramSnapshot{};
    for (unsigned b = 0; b < numBuckets; ++b)
        out.buckets[b] = sumSlot(base + b);
    out.count = sumSlot(base + numBuckets);
    out.sum = sumSlot(base + numBuckets + 1);
    return true;
}

double
MetricsRegistry::HistogramSnapshot::percentile(double q) const
{
    if (count == 0)
        return 0.0;
    if (q < 0.0)
        q = 0.0;
    if (q > 1.0)
        q = 1.0;
    const double target = q * static_cast<double>(count);
    std::uint64_t cum = 0;
    for (unsigned b = 0; b < numBuckets; ++b) {
        const std::uint64_t in_bucket = buckets[b];
        if (in_bucket == 0)
            continue;
        if (static_cast<double>(cum + in_bucket) >= target) {
            if (b >= numFiniteBuckets)
                return static_cast<double>(
                    bounds[numFiniteBuckets - 1]);
            const double lo =
                b == 0 ? 0.0 : static_cast<double>(bounds[b - 1]);
            const double hi = static_cast<double>(bounds[b]);
            const double frac =
                (target - static_cast<double>(cum)) /
                static_cast<double>(in_bucket);
            return lo + (hi - lo) * (frac < 0.0 ? 0.0 : frac);
        }
        cum += in_bucket;
    }
    return static_cast<double>(bounds[numFiniteBuckets - 1]);
}

std::string
MetricsRegistry::renderPrometheus() const
{
    std::string out;
    char buf[256];
    for (const Def &d : defs_) {
        if (!d.help.empty()) {
            out += "# HELP " + d.name + " " + d.help + "\n";
        }
        out += "# TYPE " + d.name + " ";
        out += kindName(d.kind);
        out += "\n";
        if (d.kind != MetricKind::Histogram) {
            std::snprintf(buf, sizeof(buf), "%s %" PRIu64 "\n",
                          d.name.c_str(), sumSlot(d.slot));
            out += buf;
            continue;
        }
        // Prometheus histograms are cumulative over le-labeled
        // buckets, closed by the +Inf bucket (== _count).
        std::uint64_t cum = 0;
        for (unsigned b = 0; b < numFiniteBuckets; ++b) {
            cum += sumSlot(d.slot + b);
            std::snprintf(buf, sizeof(buf),
                          "%s_bucket{le=\"%" PRIu64 "\"} %" PRIu64
                          "\n",
                          d.name.c_str(), bounds[b], cum);
            out += buf;
        }
        cum += sumSlot(d.slot + numFiniteBuckets);
        std::snprintf(buf, sizeof(buf),
                      "%s_bucket{le=\"+Inf\"} %" PRIu64 "\n",
                      d.name.c_str(), cum);
        out += buf;
        std::snprintf(buf, sizeof(buf), "%s_sum %" PRIu64 "\n",
                      d.name.c_str(),
                      sumSlot(d.slot + numBuckets + 1));
        out += buf;
        std::snprintf(buf, sizeof(buf), "%s_count %" PRIu64 "\n",
                      d.name.c_str(), sumSlot(d.slot + numBuckets));
        out += buf;
    }
    return out;
}

std::string
MetricsRegistry::renderJson() const
{
    json::JsonObject o;
    for (const Def &d : defs_) {
        if (d.kind != MetricKind::Histogram) {
            o.field(d.name, sumSlot(d.slot));
            continue;
        }
        HistogramSnapshot snap;
        histogramSnapshot(d.name, snap);
        json::JsonObject h;
        h.field("count", snap.count)
            .field("sum_usec", snap.sum)
            .field("p50_usec", snap.percentile(0.50))
            .field("p95_usec", snap.percentile(0.95))
            .field("p99_usec", snap.percentile(0.99));
        o.raw(d.name, h.str());
    }
    return o.str();
}

} // namespace specslice::obs
