/**
 * @file
 * Cross-process Chrome-trace merging: stitch the per-request trace
 * fragments that pool workers write (EventBuffer::writeChromeTrace
 * with a worker-lane ChromeTraceMeta) into one Perfetto-loadable
 * timeline for a whole sweep.
 *
 * Each fragment's timestamps start near zero (simulation cycles), so
 * the merger keeps one running time frontier per pid lane and shifts
 * every fragment's events past the lane's previous end — per-lane
 * `ts` stays monotonic across the merged file, which trace_lint
 * --merged asserts. Lane metadata (process_name / thread_name /
 * thread_sort_index) is emitted once per (pid, tid, kind) no matter
 * how many fragments repeat it; the per-event args (including the
 * request id the daemon propagated into the worker) pass through
 * untouched.
 */

#ifndef SPECSLICE_OBS_TRACE_MERGE_HH
#define SPECSLICE_OBS_TRACE_MERGE_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace specslice::obs
{

struct MergeStats
{
    std::size_t fragments = 0;  ///< input files consumed
    std::size_t events = 0;     ///< non-metadata events emitted
    std::size_t lanes = 0;      ///< distinct pid lanes
};

/**
 * Merge Chrome trace fragments (in the given order — the caller
 * sorts, e.g. by request id) into one trace document on `os`.
 * @return false with error set if any input is unreadable or has no
 *         traceEvents array; already-written output is then partial
 *         and should be discarded.
 */
bool mergeChromeTraces(const std::vector<std::string> &paths,
                       std::ostream &os, std::string &error,
                       MergeStats *stats = nullptr);

} // namespace specslice::obs

#endif // SPECSLICE_OBS_TRACE_MERGE_HH
