#include "obs/interval.hh"

#include <cinttypes>
#include <cstdio>

namespace specslice::obs
{

std::string
intervalsCsvHeader()
{
    return "interval,start_cycle,end_cycle,retired,ipc,loads,"
           "l1d_misses,l1d_miss_rate,l2_misses,cond_branches,"
           "mispredictions,mispredict_rate,forks,preds_generated,"
           "preds_bound,preds_used,preds_killed";
}

namespace
{

/** Format one record as a CSV row (no newline). */
std::string
csvRow(const IntervalRecord &r)
{
    char buf[512];
    std::snprintf(
        buf, sizeof(buf),
        "%" PRIu64 ",%" PRIu64 ",%" PRIu64 ",%" PRIu64 ",%.6g,%" PRIu64
        ",%" PRIu64 ",%.6g,%" PRIu64 ",%" PRIu64 ",%" PRIu64
        ",%.6g,%" PRIu64 ",%" PRIu64 ",%" PRIu64 ",%" PRIu64
        ",%" PRIu64,
        r.index, r.startCycle, r.endCycle, r.retired, r.ipc(), r.loads,
        r.l1dMisses, r.l1dMissRate(), r.l2Misses, r.condBranches,
        r.mispredictions, r.mispredictRate(), r.forks,
        r.predsGenerated, r.predsBound, r.predsUsed, r.predsKilled);
    return buf;
}

} // namespace

void
writeIntervalsCsv(std::ostream &os,
                  const std::vector<IntervalRecord> &records)
{
    os << intervalsCsvHeader() << '\n';
    for (const IntervalRecord &r : records)
        os << csvRow(r) << '\n';
}

std::string
intervalsToJson(const std::vector<IntervalRecord> &records)
{
    std::string out = "[";
    char buf[512];
    for (std::size_t i = 0; i < records.size(); ++i) {
        const IntervalRecord &r = records[i];
        std::snprintf(
            buf, sizeof(buf),
            "%s{\"interval\": %" PRIu64 ", \"start_cycle\": %" PRIu64
            ", \"end_cycle\": %" PRIu64 ", \"retired\": %" PRIu64
            ", \"ipc\": %.6g, \"loads\": %" PRIu64
            ", \"l1d_misses\": %" PRIu64 ", \"l2_misses\": %" PRIu64
            ", \"cond_branches\": %" PRIu64
            ", \"mispredictions\": %" PRIu64 ", \"forks\": %" PRIu64
            ", \"preds_generated\": %" PRIu64
            ", \"preds_bound\": %" PRIu64 ", \"preds_used\": %" PRIu64
            ", \"preds_killed\": %" PRIu64 "}",
            i ? ", " : "", r.index, r.startCycle, r.endCycle, r.retired,
            r.ipc(), r.loads, r.l1dMisses, r.l2Misses, r.condBranches,
            r.mispredictions, r.forks, r.predsGenerated, r.predsBound,
            r.predsUsed, r.predsKilled);
        out += buf;
    }
    out += "]";
    return out;
}

} // namespace specslice::obs
