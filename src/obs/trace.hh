/**
 * @file
 * Component-scoped debug tracing in the gem5 DPRINTF style. Each
 * subsystem traces under a named flag (fetch, smt, corr, slice, mem,
 * pred); flags are armed at startup from the SS_TRACE environment
 * variable or a --trace=flag,flag command-line option, and every
 * trace point is a single relaxed atomic load + branch when its flag
 * is off.
 *
 *     SS_DTRACE(Corr, "bound tok=", token, " pc=0x", std::hex, pc);
 *
 * Lines are emitted whole through the shared logging sink (see
 * common/logging.hh), so concurrent jobs never interleave mid-line
 * and pool workers get their lines tagged with the job index and
 * flushed in submission order.
 *
 * Building with -DSS_TRACE_DISABLED compiles every SS_DTRACE site to
 * nothing (zero code, arguments unevaluated) for maximum-speed
 * builds.
 */

#ifndef SPECSLICE_OBS_TRACE_HH
#define SPECSLICE_OBS_TRACE_HH

#include <atomic>
#include <string>

#include "common/logging.hh"

namespace specslice::obs
{

enum class TraceFlag : unsigned
{
    Fetch,  ///< per-instruction fetch: pc, seq, thread, wrong path
    Smt,    ///< pipeline control: issue, retire, squash, redirects
    Corr,   ///< correlator: entries, predictions, matches, kills
    Slice,  ///< slice engine: forks, terminations, iteration limits
    Mem,    ///< memory hierarchy: misses, prefetches, write buffer
    Pred,   ///< branch predictor: resolutions and mispredictions
    NumFlags
};

namespace trace_detail
{
/** Bitmask of enabled flags; namespace scope so the enabled() check
 *  inlines to one relaxed load at every trace point. */
inline std::atomic<unsigned> mask{0};
} // namespace trace_detail

/** Is the flag enabled? Hot-path safe (relaxed load + test). */
inline bool
traceEnabled(TraceFlag f)
{
    return trace_detail::mask.load(std::memory_order_relaxed) &
           (1u << static_cast<unsigned>(f));
}

class TraceSink
{
  public:
    static TraceSink &instance();

    /**
     * Arm flags from a comma-separated list ("corr,slice"). "all"
     * (or "1", the historical SS_TRACE value) enables every flag; an
     * unknown name is a fatal configuration error listing the valid
     * names.
     */
    void setFlags(const std::string &csv);

    /**
     * Non-fatal variant of setFlags() for CLI validation: on an
     * unknown name, arms nothing further, fills `err` with a message
     * listing the valid names, and returns false. Flags named before
     * the bad token stay armed.
     */
    bool trySetFlags(const std::string &csv, std::string &err);

    void enable(TraceFlag f);
    void disable(TraceFlag f);
    void disableAll();

    /**
     * Arm flags from the SS_TRACE environment variable if set. Safe
     * to call more than once (flags accumulate).
     */
    void initFromEnv();

    /**
     * Emit one trace line: "[trace:<flag>] <msg>" through the shared
     * logging sink (or the installed collector). The flag should be
     * checked (traceEnabled) before formatting msg; SS_DTRACE does
     * both.
     */
    void write(TraceFlag f, const std::string &msg);

    /**
     * Redirect trace lines into `lines` (for tests); null restores
     * stderr. The collector is not synchronized — install it only
     * while no traced simulation is running concurrently.
     */
    void setCollector(std::string *lines);

    static const char *flagName(TraceFlag f);

  private:
    TraceSink() = default;
    std::string *collector_ = nullptr;
};

} // namespace specslice::obs

#ifdef SS_TRACE_DISABLED
/** Tracing compiled out: zero code, arguments never evaluated. */
#define SS_DTRACE(flag, ...)                                              \
    do {                                                                  \
    } while (0)
#else
/**
 * Trace under obs::TraceFlag::flag. Costs one relaxed load + branch
 * when the flag is off; formats and emits a full line when on.
 */
#define SS_DTRACE(flag, ...)                                              \
    do {                                                                  \
        if (::specslice::obs::traceEnabled(                               \
                ::specslice::obs::TraceFlag::flag)) [[unlikely]] {        \
            ::specslice::obs::TraceSink::instance().write(                \
                ::specslice::obs::TraceFlag::flag,                        \
                ::specslice::logging_detail::concat(__VA_ARGS__));        \
        }                                                                 \
    } while (0)
#endif

#endif // SPECSLICE_OBS_TRACE_HH
