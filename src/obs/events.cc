#include "obs/events.hh"

#include <cinttypes>
#include <cstdio>

#include "common/logging.hh"

namespace specslice::obs
{

namespace
{

constexpr const char *kindNames[] = {
    "fetch",           "issue",          "retire",
    "squash",          "slice.fork",     "slice.end",
    "corr.entry",      "corr.create",    "corr.bound",
    "corr.used",       "corr.killed",    "corr.overflow",
    "region",
};
static_assert(sizeof(kindNames) / sizeof(kindNames[0]) ==
              static_cast<unsigned>(EventKind::NumKinds));

} // namespace

const char *
eventKindName(EventKind k)
{
    return kindNames[static_cast<unsigned>(k)];
}

EventBuffer::EventBuffer(std::size_t capacity)
    : ring_(capacity ? capacity : 1)
{
    SS_ASSERT(capacity > 0, "event buffer needs capacity");
}

void
EventBuffer::clear()
{
    head_ = 0;
    size_ = 0;
    dropped_ = 0;
}

void
EventBuffer::writeChromeTrace(std::ostream &os) const
{
    writeChromeTrace(os, ChromeTraceMeta{});
}

void
EventBuffer::writeChromeTrace(std::ostream &os,
                              const ChromeTraceMeta &meta) const
{
    os << "{\"displayTimeUnit\": \"ns\", \"traceEvents\": [\n";

    // Name the process and one track (Chrome "thread") per event
    // kind, so fetch/retire/squash and the correlator lifecycle land
    // on separate, labeled rows in the viewer.
    os << "{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": "
       << meta.pid << ", \"tid\": 0, \"args\": {\"name\": \""
       << meta.processName << "\"}}";
    for (unsigned k = 0; k < static_cast<unsigned>(EventKind::NumKinds);
         ++k) {
        os << ",\n{\"name\": \"thread_name\", \"ph\": \"M\", "
              "\"pid\": "
           << meta.pid << ", \"tid\": " << k + 1
           << ", \"args\": {\"name\": \"" << kindNames[k] << "\"}}";
        // Pin viewer row order to enum order.
        os << ",\n{\"name\": \"thread_sort_index\", \"ph\": \"M\", "
              "\"pid\": "
           << meta.pid << ", \"tid\": " << k + 1
           << ", \"args\": {\"sort_index\": " << k + 1 << "}}";
    }

    // Per-event request-id arg ("req") for cross-process merging.
    std::string req_arg;
    if (!meta.requestId.empty())
        req_arg = ", \"req\": \"" + meta.requestId + "\"";

    forEach([&](const TraceEvent &e) {
        unsigned k = static_cast<unsigned>(e.kind);
        char name[64];
        if (e.kind == EventKind::Region) {
            // One clearly-named span per sampled region: index in
            // the name, start instruction in the args (seq).
            std::snprintf(name, sizeof(name), "region %" PRIu64,
                          e.arg);
        } else {
            std::snprintf(name, sizeof(name), "%s", kindNames[k]);
        }
        char buf[320];
        std::snprintf(
            buf, sizeof(buf),
            ",\n{\"name\": \"%s\", \"ph\": \"X\", \"ts\": %" PRIu64
            ", \"dur\": %" PRIu64 ", \"pid\": %u, \"tid\": %u, "
            "\"args\": {\"pc\": \"0x%" PRIx64 "\", \"seq\": %" PRIu64
            ", \"thread\": %u, \"arg\": %" PRIu64 "%s}}",
            name, e.cycle, e.dur, meta.pid, k + 1, e.pc, e.seq,
            static_cast<unsigned>(e.thread), e.arg, req_arg.c_str());
        os << buf;
    });

    os << "\n]";
    if (dropped_)
        os << ", \"droppedEvents\": " << dropped_;
    os << "}\n";
}

} // namespace specslice::obs
