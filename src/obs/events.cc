#include "obs/events.hh"

#include <cinttypes>
#include <cstdio>

#include "common/logging.hh"

namespace specslice::obs
{

namespace
{

constexpr const char *kindNames[] = {
    "fetch",           "issue",          "retire",
    "squash",          "slice.fork",     "slice.end",
    "corr.entry",      "corr.create",    "corr.bound",
    "corr.used",       "corr.killed",    "corr.overflow",
};
static_assert(sizeof(kindNames) / sizeof(kindNames[0]) ==
              static_cast<unsigned>(EventKind::NumKinds));

} // namespace

const char *
eventKindName(EventKind k)
{
    return kindNames[static_cast<unsigned>(k)];
}

EventBuffer::EventBuffer(std::size_t capacity)
    : ring_(capacity ? capacity : 1)
{
    SS_ASSERT(capacity > 0, "event buffer needs capacity");
}

void
EventBuffer::clear()
{
    head_ = 0;
    size_ = 0;
    dropped_ = 0;
}

void
EventBuffer::writeChromeTrace(std::ostream &os) const
{
    os << "{\"displayTimeUnit\": \"ns\", \"traceEvents\": [\n";

    // Name the process and one track (Chrome "thread") per event
    // kind, so fetch/retire/squash and the correlator lifecycle land
    // on separate, labeled rows in the viewer.
    os << "{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 0, "
          "\"tid\": 0, \"args\": {\"name\": \"specslice\"}}";
    for (unsigned k = 0; k < static_cast<unsigned>(EventKind::NumKinds);
         ++k) {
        os << ",\n{\"name\": \"thread_name\", \"ph\": \"M\", "
              "\"pid\": 0, \"tid\": "
           << k + 1 << ", \"args\": {\"name\": \"" << kindNames[k]
           << "\"}}";
        // Pin viewer row order to enum order.
        os << ",\n{\"name\": \"thread_sort_index\", \"ph\": \"M\", "
              "\"pid\": 0, \"tid\": "
           << k + 1 << ", \"args\": {\"sort_index\": " << k + 1
           << "}}";
    }

    forEach([&](const TraceEvent &e) {
        unsigned k = static_cast<unsigned>(e.kind);
        char buf[256];
        std::snprintf(
            buf, sizeof(buf),
            ",\n{\"name\": \"%s\", \"ph\": \"X\", \"ts\": %" PRIu64
            ", \"dur\": 1, \"pid\": 0, \"tid\": %u, \"args\": "
            "{\"pc\": \"0x%" PRIx64 "\", \"seq\": %" PRIu64
            ", \"thread\": %u, \"arg\": %" PRIu64 "}}",
            kindNames[k], e.cycle, k + 1, e.pc, e.seq,
            static_cast<unsigned>(e.thread), e.arg);
        os << buf;
    });

    os << "\n]";
    if (dropped_)
        os << ", \"droppedEvents\": " << dropped_;
    os << "}\n";
}

} // namespace specslice::obs
