/**
 * @file
 * Typed service metrics: counters, gauges, and fixed-bucket latency
 * histograms that aggregate across forked worker processes.
 *
 * The value store is an anonymous shared mmap of per-process "pages"
 * (page 0 = the owning daemon, pages 1..N = ProcPool workers),
 * mirroring the proc-pool job-slot design: a worker dying mid-update
 * cannot corrupt anything because every slot is one relaxed atomic
 * u64, and a SIGKILLed worker's already-recorded values survive in
 * the parent-owned mapping. Scrapes sum the slot across all pages.
 *
 * Registration discipline: every metric name must be registered in
 * the parent BEFORE the worker pool forks — children inherit the
 * name→slot schema by fork and re-fetching a registered name is an
 * idempotent lookup. (A name registered only after fork is private
 * to the registering process and invisible to scrapes in the other.)
 *
 * Hot-path cost: one relaxed fetch_add per counter increment, two
 * for a histogram observation — no locks, no allocation.
 *
 * Two renderers: Prometheus text exposition (for `GET /metrics` on
 * the service's HTTP shim) and a JSON block with p50/p95/p99 per
 * histogram (for `--stats` envelopes and BENCH_serve.json). Both
 * read the same pages, so their numbers always agree.
 *
 * The ambient registry (setAmbientMetrics/ambientMetrics) lets deep
 * layers — ResultCache, ProcPool workers, serve_job — record without
 * plumbing a pointer through every signature; when no ambient
 * registry is installed every handle is a no-op.
 */

#ifndef SPECSLICE_OBS_METRICS_HH
#define SPECSLICE_OBS_METRICS_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace specslice::obs
{

class MetricsRegistry;

enum class MetricKind : std::uint8_t
{
    Counter,
    Gauge,
    Histogram,
};

/** Monotonic event count. Default-constructed handles are no-ops. */
class Counter
{
  public:
    Counter() = default;
    void inc(std::uint64_t n = 1);

  private:
    friend class MetricsRegistry;
    Counter(MetricsRegistry *reg, std::uint32_t slot)
        : reg_(reg), slot_(slot)
    {
    }
    MetricsRegistry *reg_ = nullptr;
    std::uint32_t slot_ = 0;
};

/** Point-in-time value, set by its owning process. */
class Gauge
{
  public:
    Gauge() = default;
    void set(std::uint64_t v);
    void add(std::uint64_t n = 1);

  private:
    friend class MetricsRegistry;
    Gauge(MetricsRegistry *reg, std::uint32_t slot)
        : reg_(reg), slot_(slot)
    {
    }
    MetricsRegistry *reg_ = nullptr;
    std::uint32_t slot_ = 0;
};

/** Fixed-bucket latency histogram (microsecond samples). */
class Histogram
{
  public:
    Histogram() = default;
    void observe(std::uint64_t usec);

  private:
    friend class MetricsRegistry;
    Histogram(MetricsRegistry *reg, std::uint32_t slot)
        : reg_(reg), slot_(slot)
    {
    }
    MetricsRegistry *reg_ = nullptr;
    std::uint32_t slot_ = 0;
};

class MetricsRegistry
{
  public:
    /** Pages: the daemon plus one per possible pool worker. */
    static constexpr unsigned maxProcesses = 65;
    /** u64 value slots per process page. */
    static constexpr unsigned slotsPerPage = 1024;
    /** Finite bucket upper bounds, in microseconds. */
    static constexpr unsigned numFiniteBuckets = 22;
    /** Finite buckets + the +Inf overflow bucket. */
    static constexpr unsigned numBuckets = numFiniteBuckets + 1;
    /** Slots one histogram consumes: buckets + count + sum. */
    static constexpr unsigned histogramSlots = numBuckets + 2;

    /** @param processes shared pages to allocate (clamped to
     *         [1, maxProcesses]); fork after construction. */
    explicit MetricsRegistry(unsigned processes = 1);
    ~MetricsRegistry();

    MetricsRegistry(const MetricsRegistry &) = delete;
    MetricsRegistry &operator=(const MetricsRegistry &) = delete;

    /** Register (or re-fetch) a metric. Re-registration with the
     *  same name returns the existing slot; a kind mismatch is
     *  fatal (it would silently alias storage). */
    Counter counter(const std::string &name,
                    const std::string &help = "");
    Gauge gauge(const std::string &name, const std::string &help = "");
    Histogram histogram(const std::string &name,
                        const std::string &help = "");

    /** Select which page this process writes (workers call this
     *  after fork with their worker index + 1). */
    void bindProcess(unsigned page);
    unsigned boundProcess() const { return bound_; }
    unsigned processes() const { return processes_; }

    /** Cross-page sum of a counter/gauge (0 if unregistered). */
    std::uint64_t value(const std::string &name) const;

    struct HistogramSnapshot
    {
        std::uint64_t count = 0;
        std::uint64_t sum = 0;
        std::uint64_t buckets[numBuckets] = {};
        /** Estimated quantile (q in [0,1]): linear interpolation
         *  inside the covering bucket; the +Inf bucket reports the
         *  largest finite bound. 0 when empty. */
        double percentile(double q) const;
    };

    /** Cross-page histogram totals; false if unregistered. */
    bool histogramSnapshot(const std::string &name,
                           HistogramSnapshot &out) const;

    /** The finite bucket upper bounds (numFiniteBuckets entries). */
    static const std::uint64_t *bucketBounds();

    /** Prometheus text exposition of every registered metric. */
    std::string renderPrometheus() const;

    /**
     * JSON object: counters/gauges as "name": N, histograms as
     * "name": {"count", "sum_usec", "p50_usec", "p95_usec",
     * "p99_usec"}. Embedded in --stats and BENCH_serve.json.
     */
    std::string renderJson() const;

  private:
    struct Def
    {
        MetricKind kind;
        std::string name;
        std::string help;
        std::uint32_t slot;
    };

    std::uint32_t allocate(MetricKind kind, const std::string &name,
                           const std::string &help, unsigned slots);
    std::uint64_t sumSlot(std::uint32_t slot) const;

    friend class Counter;
    friend class Gauge;
    friend class Histogram;

    void *pages_ = nullptr;  ///< shared mmap of processes_ pages
    unsigned processes_ = 1;
    unsigned bound_ = 0;
    std::uint32_t nextSlot_ = 0;
    std::vector<Def> defs_;
    std::map<std::string, std::size_t> byName_;
};

/** Install/fetch the process-wide ambient registry (not owned; set
 *  before forking or spawning threads, clear before destruction). */
void setAmbientMetrics(MetricsRegistry *reg);
MetricsRegistry *ambientMetrics();

} // namespace specslice::obs

#endif // SPECSLICE_OBS_METRICS_HH
