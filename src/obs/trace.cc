#include "obs/trace.hh"

#include <cstdlib>
#include <sstream>

namespace specslice::obs
{

namespace
{

constexpr const char *flagNames[] = {"fetch", "smt",  "corr",
                                     "slice", "mem",  "pred"};
static_assert(sizeof(flagNames) / sizeof(flagNames[0]) ==
              static_cast<unsigned>(TraceFlag::NumFlags));

} // namespace

TraceSink &
TraceSink::instance()
{
    static TraceSink sink;
    return sink;
}

const char *
TraceSink::flagName(TraceFlag f)
{
    return flagNames[static_cast<unsigned>(f)];
}

void
TraceSink::enable(TraceFlag f)
{
    trace_detail::mask.fetch_or(1u << static_cast<unsigned>(f),
                                std::memory_order_relaxed);
}

void
TraceSink::disable(TraceFlag f)
{
    trace_detail::mask.fetch_and(~(1u << static_cast<unsigned>(f)),
                                 std::memory_order_relaxed);
}

void
TraceSink::disableAll()
{
    trace_detail::mask.store(0, std::memory_order_relaxed);
}

void
TraceSink::setFlags(const std::string &csv)
{
    std::string err;
    if (!trySetFlags(csv, err))
        SS_FATAL(err);
}

bool
TraceSink::trySetFlags(const std::string &csv, std::string &err)
{
    std::stringstream ss(csv);
    std::string name;
    while (std::getline(ss, name, ',')) {
        if (name.empty())
            continue;
        if (name == "all" || name == "1") {
            for (unsigned i = 0;
                 i < static_cast<unsigned>(TraceFlag::NumFlags); ++i)
                enable(static_cast<TraceFlag>(i));
            continue;
        }
        bool found = false;
        for (unsigned i = 0;
             i < static_cast<unsigned>(TraceFlag::NumFlags); ++i) {
            if (name == flagNames[i]) {
                enable(static_cast<TraceFlag>(i));
                found = true;
                break;
            }
        }
        if (!found) {
            err = "unknown trace flag '" + name +
                  "' (valid: fetch,smt,corr,slice,mem,pred,all)";
            return false;
        }
    }
    return true;
}

void
TraceSink::initFromEnv()
{
    if (const char *v = std::getenv("SS_TRACE"))
        setFlags(v);
}

void
TraceSink::write(TraceFlag f, const std::string &msg)
{
    std::string line = "[trace:";
    line += flagName(f);
    line += "] ";
    line += msg;
    if (collector_) {
        collector_->append(line);
        collector_->push_back('\n');
        return;
    }
    logging_detail::emitLine(nullptr, line);
}

void
TraceSink::setCollector(std::string *lines)
{
    collector_ = lines;
}

} // namespace specslice::obs
