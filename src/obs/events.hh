/**
 * @file
 * Structured event export: the pipeline and slice hardware record
 * typed events into a bounded ring buffer, which drains to Chrome
 * trace_event JSON — open the file directly in chrome://tracing or
 * https://ui.perfetto.dev to see the pipeline and slice timeline on
 * per-event-kind tracks.
 *
 * Event semantics (one TraceEvent per occurrence, timestamped with
 * the simulation cycle):
 *
 *   Fetch / Issue / Retire / Squash  — one per dynamic instruction
 *       reaching that pipeline point (arg: 1 when the fetch was
 *       wrong-path).
 *   SliceFork / SliceEnd             — helper-thread lifetime (arg:
 *       slice index; seq: fork-point VN#).
 *   CorrEntryCreate                  — branch-queue entry allocated
 *       at fork (pc: problem branch; arg: entry id).
 *   CorrPredCreate                   — prediction slot allocated when
 *       its PGI is fetched (arg: slot token).
 *   CorrPredBound                    — a main-thread branch matched
 *       the slot for the first time (seq: consumer VN#; arg: token).
 *   CorrPredUsed / CorrPredKilled    — exactly one of these closes
 *       every slot when it is deallocated (or at end-of-run drain):
 *       Used if some branch ever bound it, Killed otherwise (arg:
 *       token). Every CorrPredBound is therefore preceded by a
 *       CorrPredCreate and followed by exactly one terminal event
 *       for its token.
 *   CorrOverflow                     — a prediction was dropped
 *       because all slots of its entry were in use (arg: entry id).
 *
 * The buffer is bounded: when full, the oldest event is overwritten
 * and dropped() counts the loss. It is not thread-safe; each
 * simulation run owns its buffer (runs never share one).
 */

#ifndef SPECSLICE_OBS_EVENTS_HH
#define SPECSLICE_OBS_EVENTS_HH

#include <cstdint>
#include <ostream>
#include <vector>

#include "common/types.hh"

namespace specslice::obs
{

enum class EventKind : std::uint8_t
{
    Fetch,
    Issue,
    Retire,
    Squash,
    SliceFork,
    SliceEnd,
    CorrEntryCreate,
    CorrPredCreate,
    CorrPredBound,
    CorrPredUsed,
    CorrPredKilled,
    CorrOverflow,
    /** One span per sampled timing region (sim::Simulator): ts is
     *  the region's base cycle, dur its cycle count, seq the
     *  instruction position the region started at, arg its index. */
    Region,
    NumKinds
};

const char *eventKindName(EventKind k);

struct TraceEvent
{
    Cycle cycle = 0;
    EventKind kind = EventKind::Fetch;
    ThreadId thread = 0;
    Addr pc = invalidAddr;
    SeqNum seq = invalidSeqNum;
    std::uint64_t arg = 0;  ///< kind-specific (token, id, flag)
    Cycle dur = 1;          ///< span length (1 for point events)
};

/** Identity stamped onto writeChromeTrace output. Defaults preserve
 *  the classic single-process trace; the sweep service's workers set
 *  a per-worker pid lane and the request id they are serving, so a
 *  daemon-side merge keeps lanes and requests distinguishable. */
struct ChromeTraceMeta
{
    unsigned pid = 0;
    std::string processName = "specslice";
    std::string requestId;  ///< "" = omit the "req" arg
};

class EventBuffer
{
  public:
    /** @param capacity max retained events (oldest dropped beyond). */
    explicit EventBuffer(std::size_t capacity = 1u << 18);

    /** Advance the timestamp subsequent events are stamped with.
     *  The owning core calls this once per simulated cycle. */
    void setNow(Cycle now) { now_ = now; }
    Cycle now() const { return now_; }

    /** Offset added to every pushed timestamp. Multi-run and sampled
     *  traces advance it between runs/regions so each segment's
     *  cycle-0 restart lands past the previous segment on the
     *  timeline instead of overlapping it. */
    void setTimeBase(Cycle base) { base_ = base; }
    Cycle timeBase() const { return base_; }

    /** Record an event at the current cycle. */
    void
    push(EventKind kind, ThreadId thread, Addr pc, SeqNum seq,
         std::uint64_t arg = 0)
    {
        TraceEvent &e = slot();
        e.cycle = base_ + now_;
        e.kind = kind;
        e.thread = thread;
        e.pc = pc;
        e.seq = seq;
        e.arg = arg;
        e.dur = 1;
    }

    /** Record a span at an absolute (already based) timestamp. */
    void
    pushSpan(EventKind kind, Cycle ts, Cycle dur, ThreadId thread,
             Addr pc, SeqNum seq, std::uint64_t arg = 0)
    {
        TraceEvent &e = slot();
        e.cycle = ts;
        e.kind = kind;
        e.thread = thread;
        e.pc = pc;
        e.seq = seq;
        e.arg = arg;
        e.dur = dur ? dur : 1;
    }

    /** Retained event count (<= capacity). */
    std::size_t size() const { return size_; }
    /** Events lost to the capacity bound. */
    std::uint64_t dropped() const { return dropped_; }
    std::size_t capacity() const { return ring_.size(); }

    /** Visit retained events oldest first. */
    template <typename Fn>
    void
    forEach(Fn fn) const
    {
        std::size_t start = (head_ + ring_.size() - size_) %
                            ring_.size();
        for (std::size_t i = 0; i < size_; ++i)
            fn(ring_[(start + i) % ring_.size()]);
    }

    void clear();

    /**
     * Write the retained events as a Chrome trace_event JSON object
     * ({"traceEvents": [...]}). Every event kind gets its own named
     * track; the simulation cycle is the microsecond timestamp, and
     * pc/seq/thread/arg ride along in "args".
     */
    void writeChromeTrace(std::ostream &os) const;

    /** Same, stamped with an explicit process identity (worker lane
     *  pid, process name) and, when set, a per-event request-id arg
     *  for daemon-side cross-process merging. */
    void writeChromeTrace(std::ostream &os,
                          const ChromeTraceMeta &meta) const;

  private:
    TraceEvent &
    slot()
    {
        TraceEvent &e = ring_[head_];
        head_ = (head_ + 1) % ring_.size();
        if (size_ < ring_.size())
            ++size_;
        else
            ++dropped_;
        return e;
    }

    std::vector<TraceEvent> ring_;
    std::size_t head_ = 0;   ///< next write position
    std::size_t size_ = 0;
    std::uint64_t dropped_ = 0;
    Cycle now_ = 0;
    Cycle base_ = 0;
};

} // namespace specslice::obs

#endif // SPECSLICE_OBS_EVENTS_HH
