/**
 * @file
 * Interval statistics time-series: the simulator slices a run into
 * fixed-length cycle windows and records, per window, the deltas of
 * the headline counters (IPC, cache miss rates, mispredict rate, and
 * the slice fork/bind/kill/use pipeline). End-of-run aggregates hide
 * phase structure — a correlator change that wins early and loses
 * late can net to zero; the time-series makes each phase visible.
 *
 * Records are carried in RunResult and emitted as a CSV file
 * (specslice_run --intervals) and as an "intervals" array in the
 * --json document.
 */

#ifndef SPECSLICE_OBS_INTERVAL_HH
#define SPECSLICE_OBS_INTERVAL_HH

#include <ostream>
#include <string>
#include <vector>

#include "common/types.hh"

namespace specslice::obs
{

/** One fixed-length window of a run; all counts are deltas. */
struct IntervalRecord
{
    std::uint64_t index = 0;
    Cycle startCycle = 0;   ///< first cycle of the window (exclusive)
    Cycle endCycle = 0;     ///< last cycle of the window (inclusive)
    std::uint64_t retired = 0;        ///< main-thread instructions
    std::uint64_t loads = 0;          ///< main-thread loads issued
    std::uint64_t l1dMisses = 0;      ///< main-thread L1D misses
    std::uint64_t l2Misses = 0;       ///< whole-hierarchy L2 misses
    std::uint64_t condBranches = 0;   ///< main, resolved
    std::uint64_t mispredictions = 0;
    std::uint64_t forks = 0;          ///< slices forked
    std::uint64_t predsGenerated = 0; ///< PGI executions
    std::uint64_t predsBound = 0;     ///< branch-to-slot matches
    std::uint64_t predsUsed = 0;      ///< correlator overrides consumed
    std::uint64_t predsKilled = 0;    ///< slot kills applied

    Cycle cycles() const { return endCycle - startCycle; }

    double
    ipc() const
    {
        return cycles() ? static_cast<double>(retired) /
                              static_cast<double>(cycles())
                        : 0.0;
    }

    double
    l1dMissRate() const
    {
        return loads ? static_cast<double>(l1dMisses) /
                           static_cast<double>(loads)
                     : 0.0;
    }

    double
    mispredictRate() const
    {
        return condBranches ? static_cast<double>(mispredictions) /
                                  static_cast<double>(condBranches)
                            : 0.0;
    }
};

/** The CSV header row matching writeIntervalsCsv (no newline). */
std::string intervalsCsvHeader();

/** Write header + one CSV row per record. */
void writeIntervalsCsv(std::ostream &os,
                       const std::vector<IntervalRecord> &records);

/** Render the records as a JSON array (for the --json document). */
std::string intervalsToJson(const std::vector<IntervalRecord> &records);

} // namespace specslice::obs

#endif // SPECSLICE_OBS_INTERVAL_HH
