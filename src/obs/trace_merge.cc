#include "obs/trace_merge.hh"

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <map>
#include <set>
#include <sstream>

namespace specslice::obs
{

namespace
{

/** Span of one balanced {...} object starting at `pos` (which must
 *  point at '{'); string-literal aware. Returns npos on imbalance. */
std::size_t
objectEnd(const std::string &text, std::size_t pos)
{
    int depth = 0;
    bool in_string = false;
    for (std::size_t i = pos; i < text.size(); ++i) {
        char c = text[i];
        if (in_string) {
            if (c == '\\')
                ++i;
            else if (c == '"')
                in_string = false;
            continue;
        }
        if (c == '"')
            in_string = true;
        else if (c == '{')
            ++depth;
        else if (c == '}' && --depth == 0)
            return i;
    }
    return std::string::npos;
}

/** First top-level-ish occurrence of `"key": <digits>` in an event
 *  object. Our own writer never reuses these key names inside args,
 *  so a plain scan is exact for the traces we merge. */
bool
findNumber(const std::string &obj, const char *key,
           std::uint64_t &value, std::size_t *digits_at = nullptr,
           std::size_t *digits_len = nullptr)
{
    const std::string needle = std::string("\"") + key + "\"";
    std::size_t pos = obj.find(needle);
    if (pos == std::string::npos)
        return false;
    pos += needle.size();
    while (pos < obj.size() &&
           (obj[pos] == ':' || obj[pos] == ' '))
        ++pos;
    std::size_t start = pos;
    while (pos < obj.size() && obj[pos] >= '0' && obj[pos] <= '9')
        ++pos;
    if (pos == start)
        return false;
    value = std::strtoull(obj.c_str() + start, nullptr, 10);
    if (digits_at)
        *digits_at = start;
    if (digits_len)
        *digits_len = pos - start;
    return true;
}

bool
findString(const std::string &obj, const char *key, std::string &value)
{
    const std::string needle = std::string("\"") + key + "\"";
    std::size_t pos = obj.find(needle);
    if (pos == std::string::npos)
        return false;
    pos = obj.find('"', pos + needle.size() + 1);
    if (pos == std::string::npos)
        return false;
    std::size_t end = pos + 1;
    while (end < obj.size() && obj[end] != '"') {
        if (obj[end] == '\\')
            ++end;
        ++end;
    }
    if (end >= obj.size())
        return false;
    value = obj.substr(pos + 1, end - pos - 1);
    return true;
}

} // namespace

bool
mergeChromeTraces(const std::vector<std::string> &paths,
                  std::ostream &os, std::string &error,
                  MergeStats *stats)
{
    MergeStats ms;
    std::map<std::uint64_t, std::uint64_t> lane_offset;
    std::set<std::string> seen_metadata;

    os << "{\"displayTimeUnit\": \"ns\", \"traceEvents\": [";
    bool first = true;

    for (const std::string &path : paths) {
        std::ifstream is(path);
        if (!is) {
            error = "cannot open trace fragment '" + path + "'";
            return false;
        }
        std::ostringstream buf;
        buf << is.rdbuf();
        const std::string text = buf.str();

        std::size_t pos = text.find("\"traceEvents\"");
        if (pos == std::string::npos) {
            error = "fragment '" + path + "' has no traceEvents";
            return false;
        }
        pos = text.find('[', pos);
        if (pos == std::string::npos) {
            error = "fragment '" + path +
                    "': traceEvents is not an array";
            return false;
        }
        ++pos;

        // This fragment's per-lane high-water mark (shifted time).
        std::map<std::uint64_t, std::uint64_t> lane_end;

        for (;;) {
            pos = text.find('{', pos);
            if (pos == std::string::npos)
                break;
            std::size_t end = objectEnd(text, pos);
            if (end == std::string::npos) {
                error = "fragment '" + path +
                        "': unbalanced event object";
                return false;
            }
            std::string obj = text.substr(pos, end - pos + 1);
            pos = end + 1;

            std::string ph;
            findString(obj, "ph", ph);
            std::uint64_t pid = 0;
            findNumber(obj, "pid", pid);

            if (ph == "M") {
                // Lane metadata: keep the first occurrence per
                // (kind, pid, tid); fragments from the same worker
                // repeat it verbatim.
                std::string name;
                std::uint64_t tid = 0;
                findString(obj, "name", name);
                findNumber(obj, "tid", tid);
                std::string dedup = name + "|" +
                                    std::to_string(pid) + "|" +
                                    std::to_string(tid);
                if (!seen_metadata.insert(dedup).second)
                    continue;
                os << (first ? "\n" : ",\n") << obj;
                first = false;
                continue;
            }

            std::uint64_t ts = 0;
            std::size_t ts_at = 0, ts_len = 0;
            if (!findNumber(obj, "ts", ts, &ts_at, &ts_len)) {
                // A non-metadata event without a timestamp: pass it
                // through unshifted rather than inventing one.
                os << (first ? "\n" : ",\n") << obj;
                first = false;
                ++ms.events;
                continue;
            }
            std::uint64_t dur = 0;
            findNumber(obj, "dur", dur);

            const std::uint64_t shifted = lane_offset[pid] + ts;
            std::string rewritten = obj.substr(0, ts_at) +
                                    std::to_string(shifted) +
                                    obj.substr(ts_at + ts_len);
            auto &hi = lane_end[pid];
            if (shifted + dur > hi)
                hi = shifted + dur;

            os << (first ? "\n" : ",\n") << rewritten;
            first = false;
            ++ms.events;
        }

        // Later fragments on the same lane start past this one.
        for (const auto &[lane, end_ts] : lane_end)
            lane_offset[lane] = end_ts + 1;
        ++ms.fragments;
    }

    os << "\n]}\n";
    ms.lanes = lane_offset.size();
    if (stats)
        *stats = ms;
    return true;
}

} // namespace specslice::obs
