/**
 * @file
 * A label-based assembler for the zsr ISA. Workloads and speculative
 * slices are written against this API; it resolves forward references
 * and produces a CodeSection plus a symbol table.
 */

#ifndef SPECSLICE_ISA_ASSEMBLER_HH
#define SPECSLICE_ISA_ASSEMBLER_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/types.hh"
#include "isa/instruction.hh"
#include "isa/program.hh"

namespace specslice::isa
{

/**
 * Builds one code section. Typical use:
 * @code
 *   Assembler as(0x1000);
 *   as.label("loop");
 *   as.ldq(3, 6, 0);
 *   as.beq(3, "done");
 *   as.br("loop");
 *   as.label("done");
 *   as.halt();
 *   CodeSection sec = as.finish();
 * @endcode
 */
class Assembler
{
  public:
    explicit Assembler(Addr base) : base_(base) {}

    /** Define a label at the current position. */
    void label(const std::string &name);

    /** @return the address of the next instruction to be emitted. */
    Addr here() const { return base_ + code_.size() * instBytes; }

    // Integer ALU, register form.
    void add(RegIndex rc, RegIndex ra, RegIndex rb);
    void sub(RegIndex rc, RegIndex ra, RegIndex rb);
    void and_(RegIndex rc, RegIndex ra, RegIndex rb);
    void or_(RegIndex rc, RegIndex ra, RegIndex rb);
    void xor_(RegIndex rc, RegIndex ra, RegIndex rb);
    void sll(RegIndex rc, RegIndex ra, RegIndex rb);
    void srl(RegIndex rc, RegIndex ra, RegIndex rb);
    void sra(RegIndex rc, RegIndex ra, RegIndex rb);
    void cmpeq(RegIndex rc, RegIndex ra, RegIndex rb);
    void cmplt(RegIndex rc, RegIndex ra, RegIndex rb);
    void cmple(RegIndex rc, RegIndex ra, RegIndex rb);
    void cmpult(RegIndex rc, RegIndex ra, RegIndex rb);
    void s4add(RegIndex rc, RegIndex ra, RegIndex rb);
    void s8add(RegIndex rc, RegIndex ra, RegIndex rb);
    void cmoveq(RegIndex rc, RegIndex ra, RegIndex rb);
    void cmovne(RegIndex rc, RegIndex ra, RegIndex rb);
    void cmovlt(RegIndex rc, RegIndex ra, RegIndex rb);

    // Integer ALU, immediate form.
    void addi(RegIndex rc, RegIndex ra, std::int32_t imm);
    void subi(RegIndex rc, RegIndex ra, std::int32_t imm);
    void andi(RegIndex rc, RegIndex ra, std::int32_t imm);
    void ori(RegIndex rc, RegIndex ra, std::int32_t imm);
    void xori(RegIndex rc, RegIndex ra, std::int32_t imm);
    void slli(RegIndex rc, RegIndex ra, std::int32_t imm);
    void srli(RegIndex rc, RegIndex ra, std::int32_t imm);
    void srai(RegIndex rc, RegIndex ra, std::int32_t imm);
    void cmpeqi(RegIndex rc, RegIndex ra, std::int32_t imm);
    void cmplti(RegIndex rc, RegIndex ra, std::int32_t imm);
    void cmplei(RegIndex rc, RegIndex ra, std::int32_t imm);
    void cmpulti(RegIndex rc, RegIndex ra, std::int32_t imm);
    void ldi(RegIndex rc, std::int32_t imm);
    /** Load a full 64-bit constant (ldi + shifts as needed). */
    void ldi64(RegIndex rc, std::uint64_t value);
    /** Copy register (or_ with zero). */
    void mov(RegIndex rc, RegIndex ra);

    // Complex integer.
    void mul(RegIndex rc, RegIndex ra, RegIndex rb);
    void div(RegIndex rc, RegIndex ra, RegIndex rb);

    // Floating point (double bit patterns in integer registers).
    void fadd(RegIndex rc, RegIndex ra, RegIndex rb);
    void fsub(RegIndex rc, RegIndex ra, RegIndex rb);
    void fmul(RegIndex rc, RegIndex ra, RegIndex rb);
    void fcmplt(RegIndex rc, RegIndex ra, RegIndex rb);
    void fcmple(RegIndex rc, RegIndex ra, RegIndex rb);
    void fcmpeq(RegIndex rc, RegIndex ra, RegIndex rb);
    void cvtif(RegIndex rc, RegIndex ra);
    void cvtfi(RegIndex rc, RegIndex ra);

    // Memory.
    void ldq(RegIndex rc, RegIndex rb, std::int32_t off);
    void ldl(RegIndex rc, RegIndex rb, std::int32_t off);
    void ldbu(RegIndex rc, RegIndex rb, std::int32_t off);
    void stq(RegIndex ra, RegIndex rb, std::int32_t off);
    void stl(RegIndex ra, RegIndex rb, std::int32_t off);
    void stb(RegIndex ra, RegIndex rb, std::int32_t off);
    void prefetch(RegIndex rb, std::int32_t off);

    // Control (targets are labels; forward references allowed).
    void beq(RegIndex ra, const std::string &target);
    void bne(RegIndex ra, const std::string &target);
    void blt(RegIndex ra, const std::string &target);
    void ble(RegIndex ra, const std::string &target);
    void bgt(RegIndex ra, const std::string &target);
    void bge(RegIndex ra, const std::string &target);
    void br(const std::string &target);
    void call(const std::string &target, RegIndex rc = regLink);
    void jmp(RegIndex ra);
    void callr(RegIndex rb, RegIndex rc = regLink);
    void ret(RegIndex ra = regLink);

    // Misc.
    void nop();
    void halt();
    void sliceEnd();

    /** Resolve fixups and return the finished section. */
    CodeSection finish();

    /** Label -> address map (valid after finish()). */
    const std::map<std::string, Addr> &symbols() const { return symbols_; }

  private:
    void emit(Instruction inst);
    void emitBranch(Opcode op, RegIndex ra, RegIndex rc,
                    const std::string &target);

    struct Fixup
    {
        std::size_t index;
        std::string label;
    };

    Addr base_;
    std::vector<Instruction> code_;
    std::map<std::string, Addr> symbols_;
    std::vector<Fixup> fixups_;
    bool finished_ = false;
};

} // namespace specslice::isa

#endif // SPECSLICE_ISA_ASSEMBLER_HH
