/**
 * @file
 * A Program is the static code image of a workload: one or more code
 * sections (e.g. the main program and its speculative slices, which the
 * paper stores "as normal instructions in the instruction cache") plus
 * a symbol table.
 */

#ifndef SPECSLICE_ISA_PROGRAM_HH
#define SPECSLICE_ISA_PROGRAM_HH

#include <map>
#include <string>
#include <vector>

#include "common/types.hh"
#include "isa/instruction.hh"

namespace specslice::isa
{

/** A contiguous run of instructions at a base address. */
struct CodeSection
{
    Addr base = 0;
    std::vector<Instruction> code;

    Addr end() const { return base + code.size() * instBytes; }
    bool
    contains(Addr pc) const
    {
        return pc >= base && pc < end() && (pc - base) % instBytes == 0;
    }
};

/** The complete static code image of a workload. */
class Program
{
  public:
    /** Add a section; sections must not overlap. */
    void addSection(CodeSection section);

    /** Merge symbols (label -> address). */
    void addSymbols(const std::map<std::string, Addr> &symbols);

    /** @return the instruction at pc, or nullptr if unmapped. */
    const Instruction *fetch(Addr pc) const;

    /** @return true if pc holds an instruction. */
    bool contains(Addr pc) const { return fetch(pc) != nullptr; }

    /** @return the address of a label; fatal if undefined. */
    Addr symbol(const std::string &name) const;

    /** @return true if the label is defined. */
    bool hasSymbol(const std::string &name) const;

    /** @return total static instruction count across sections. */
    std::size_t staticSize() const;

    const std::vector<CodeSection> &sections() const { return sections_; }
    const std::map<std::string, Addr> &symbols() const { return symbols_; }

    /** Disassemble every section (for debugging / examples). */
    std::string disassemble() const;

  private:
    std::vector<CodeSection> sections_;
    std::map<std::string, Addr> symbols_;
};

} // namespace specslice::isa

#endif // SPECSLICE_ISA_PROGRAM_HH
