/**
 * @file
 * A Program is the static code image of a workload: one or more code
 * sections (e.g. the main program and its speculative slices, which the
 * paper stores "as normal instructions in the instruction cache") plus
 * a symbol table.
 */

#ifndef SPECSLICE_ISA_PROGRAM_HH
#define SPECSLICE_ISA_PROGRAM_HH

#include <map>
#include <string>
#include <vector>

#include "common/types.hh"
#include "isa/instruction.hh"

namespace specslice::isa
{

/** A contiguous run of instructions at a base address. */
struct CodeSection
{
    Addr base = 0;
    std::vector<Instruction> code;

    Addr end() const { return base + code.size() * instBytes; }
    bool
    contains(Addr pc) const
    {
        return pc >= base && pc < end() && (pc - base) % instBytes == 0;
    }
};

/** The complete static code image of a workload. */
class Program
{
  public:
    /**
     * Widest address span (in instructions) the O(1) PC-indexed
     * decode array covers. Programs whose sections spread further
     * apart fall back to a binary search over the sorted sections.
     */
    static constexpr std::size_t flatIndexLimit = 1u << 20;

    Program() = default;
    // The decode array points into the sections' instruction storage:
    // copies rebuild it against their own storage. Moves transfer the
    // heap buffers, so the array stays valid and moves stay cheap.
    Program(const Program &other)
        : sections_(other.sections_), symbols_(other.symbols_)
    {
        rebuildIndex();
    }
    Program &
    operator=(const Program &other)
    {
        if (this != &other) {
            sections_ = other.sections_;
            symbols_ = other.symbols_;
            rebuildIndex();
        }
        return *this;
    }
    Program(Program &&) = default;
    Program &operator=(Program &&) = default;

    /** Add a section; sections must not overlap. */
    void addSection(CodeSection section);

    /** Merge symbols (label -> address). */
    void addSymbols(const std::map<std::string, Addr> &symbols);

    /**
     * @return the instruction at pc, or nullptr if unmapped.
     *
     * Hot path of the fetch stage: a contiguous decode array built at
     * load maps pc to its instruction in O(1) with no per-section
     * scan. Purely const, so one Program may be fetched from by many
     * concurrently-running simulations.
     */
    const Instruction *
    fetch(Addr pc) const
    {
        Addr off = pc - flatBase_;  // wraps below flatBase_: off huge
        if (off < flatSpan_) {
            if (off % instBytes != 0)
                return nullptr;
            return flat_[off / instBytes];
        }
        // Outside the array. If the array exists it covers every
        // section, so pc is unmapped; otherwise binary-search the
        // sorted sections (sparse-layout fallback).
        return flat_.empty() ? fetchSlow(pc) : nullptr;
    }

    /** @return true if pc holds an instruction. */
    bool contains(Addr pc) const { return fetch(pc) != nullptr; }

    /** @return the address of a label; fatal if undefined. */
    Addr symbol(const std::string &name) const;

    /** @return true if the label is defined. */
    bool hasSymbol(const std::string &name) const;

    /** @return total static instruction count across sections. */
    std::size_t staticSize() const;

    /** Sections, sorted by base address. */
    const std::vector<CodeSection> &sections() const { return sections_; }
    const std::map<std::string, Addr> &symbols() const { return symbols_; }

    /** Disassemble every section (for debugging / examples). */
    std::string disassemble() const;

  private:
    /** Binary search over the sorted sections (flat-array fallback). */
    const Instruction *fetchSlow(Addr pc) const;
    /** Rebuild the PC-indexed decode array after a section change. */
    void rebuildIndex();

    std::vector<CodeSection> sections_;
    std::map<std::string, Addr> symbols_;

    /**
     * O(1) decode index: flat_[(pc - flatBase_) / instBytes] is the
     * instruction at pc (nullptr in inter-section gaps). Empty when
     * there are no sections or the span exceeds flatIndexLimit.
     * flatSpan_ is the covered byte span (0 when empty), so the fetch
     * fast path is a single range check.
     */
    std::vector<const Instruction *> flat_;
    Addr flatBase_ = 0;
    Addr flatSpan_ = 0;
};

} // namespace specslice::isa

#endif // SPECSLICE_ISA_PROGRAM_HH
