#include "isa/program.hh"

#include <algorithm>
#include <sstream>

#include "common/logging.hh"

namespace specslice::isa
{

void
Program::addSection(CodeSection section)
{
    SS_ASSERT(section.base % instBytes == 0, "misaligned section base");
    for (const auto &s : sections_) {
        bool disjoint = section.end() <= s.base || section.base >= s.end();
        SS_ASSERT(disjoint, "overlapping code sections");
    }
    // Keep sections sorted by base so lookups can binary-search.
    auto pos = std::upper_bound(
        sections_.begin(), sections_.end(), section.base,
        [](Addr base, const CodeSection &s) { return base < s.base; });
    sections_.insert(pos, std::move(section));
    rebuildIndex();
}

void
Program::rebuildIndex()
{
    flat_.clear();
    flatBase_ = 0;
    flatSpan_ = 0;
    if (sections_.empty())
        return;

    Addr lo = sections_.front().base;
    Addr hi = sections_.back().end();
    std::size_t span_insts = (hi - lo) / instBytes;
    if (span_insts > flatIndexLimit)
        return;  // sparse layout: fetchSlow() serves lookups

    flat_.assign(span_insts, nullptr);
    for (const auto &s : sections_) {
        std::size_t idx = (s.base - lo) / instBytes;
        for (const Instruction &inst : s.code)
            flat_[idx++] = &inst;
    }
    flatBase_ = lo;
    flatSpan_ = hi - lo;
}

const Instruction *
Program::fetchSlow(Addr pc) const
{
    // First section with base > pc; its predecessor is the only
    // candidate container.
    auto it = std::upper_bound(
        sections_.begin(), sections_.end(), pc,
        [](Addr p, const CodeSection &s) { return p < s.base; });
    if (it == sections_.begin())
        return nullptr;
    const CodeSection &s = *(it - 1);
    if (!s.contains(pc))
        return nullptr;
    return &s.code[(pc - s.base) / instBytes];
}

void
Program::addSymbols(const std::map<std::string, Addr> &symbols)
{
    for (const auto &[name, addr] : symbols) {
        auto [it, inserted] = symbols_.emplace(name, addr);
        if (!inserted && it->second != addr)
            SS_FATAL("conflicting definitions of symbol '", name, "'");
    }
}

Addr
Program::symbol(const std::string &name) const
{
    auto it = symbols_.find(name);
    if (it == symbols_.end())
        SS_FATAL("undefined symbol '", name, "'");
    return it->second;
}

bool
Program::hasSymbol(const std::string &name) const
{
    return symbols_.find(name) != symbols_.end();
}

std::size_t
Program::staticSize() const
{
    std::size_t n = 0;
    for (const auto &s : sections_)
        n += s.code.size();
    return n;
}

std::string
Program::disassemble() const
{
    // Invert the symbol table so labels annotate their addresses.
    std::map<Addr, std::string> labels;
    for (const auto &[name, addr] : symbols_)
        labels[addr] = name;

    std::ostringstream os;
    for (const auto &s : sections_) {
        os << "section @ 0x" << std::hex << s.base << std::dec << ":\n";
        Addr pc = s.base;
        for (const auto &inst : s.code) {
            auto it = labels.find(pc);
            if (it != labels.end())
                os << it->second << ":\n";
            os << "  0x" << std::hex << pc << std::dec << ":  "
               << inst.disassemble() << '\n';
            pc += instBytes;
        }
    }
    return os.str();
}

} // namespace specslice::isa
