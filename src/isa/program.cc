#include "isa/program.hh"

#include <sstream>

#include "common/logging.hh"

namespace specslice::isa
{

void
Program::addSection(CodeSection section)
{
    SS_ASSERT(section.base % instBytes == 0, "misaligned section base");
    for (const auto &s : sections_) {
        bool disjoint = section.end() <= s.base || section.base >= s.end();
        SS_ASSERT(disjoint, "overlapping code sections");
    }
    sections_.push_back(std::move(section));
}

void
Program::addSymbols(const std::map<std::string, Addr> &symbols)
{
    for (const auto &[name, addr] : symbols) {
        auto [it, inserted] = symbols_.emplace(name, addr);
        if (!inserted && it->second != addr)
            SS_FATAL("conflicting definitions of symbol '", name, "'");
    }
}

const Instruction *
Program::fetch(Addr pc) const
{
    for (const auto &s : sections_) {
        if (s.contains(pc))
            return &s.code[(pc - s.base) / instBytes];
    }
    return nullptr;
}

Addr
Program::symbol(const std::string &name) const
{
    auto it = symbols_.find(name);
    if (it == symbols_.end())
        SS_FATAL("undefined symbol '", name, "'");
    return it->second;
}

bool
Program::hasSymbol(const std::string &name) const
{
    return symbols_.find(name) != symbols_.end();
}

std::size_t
Program::staticSize() const
{
    std::size_t n = 0;
    for (const auto &s : sections_)
        n += s.code.size();
    return n;
}

std::string
Program::disassemble() const
{
    // Invert the symbol table so labels annotate their addresses.
    std::map<Addr, std::string> labels;
    for (const auto &[name, addr] : symbols_)
        labels[addr] = name;

    std::ostringstream os;
    for (const auto &s : sections_) {
        os << "section @ 0x" << std::hex << s.base << std::dec << ":\n";
        Addr pc = s.base;
        for (const auto &inst : s.code) {
            auto it = labels.find(pc);
            if (it != labels.end())
                os << it->second << ":\n";
            os << "  0x" << std::hex << pc << std::dec << ":  "
               << inst.disassemble() << '\n';
            pc += instBytes;
        }
    }
    return os.str();
}

} // namespace specslice::isa
