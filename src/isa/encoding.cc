#include "isa/encoding.hh"

#include "common/bitutils.hh"
#include "common/logging.hh"

namespace specslice::isa
{

std::uint64_t
encode(const Instruction &inst, Addr pc)
{
    const OpTraits &t = inst.traits();

    std::uint32_t imm_field;
    if (inst.hasStaticTarget()) {
        std::int64_t disp =
            (static_cast<std::int64_t>(inst.target) -
             static_cast<std::int64_t>(pc + instBytes)) /
            static_cast<std::int64_t>(instBytes);
        SS_ASSERT(disp >= INT32_MIN && disp <= INT32_MAX,
                  "branch displacement overflow");
        imm_field = static_cast<std::uint32_t>(static_cast<std::int32_t>(disp));
    } else {
        imm_field = static_cast<std::uint32_t>(inst.imm);
    }

    std::uint64_t word = 0;
    word |= static_cast<std::uint64_t>(inst.op) << 54;
    word |= static_cast<std::uint64_t>(inst.ra & 0x3f) << 48;
    word |= static_cast<std::uint64_t>(inst.rb & 0x3f) << 42;
    word |= static_cast<std::uint64_t>(inst.rc & 0x3f) << 36;
    word |= imm_field;
    (void)t;
    return word;
}

Instruction
decode(std::uint64_t word, Addr pc)
{
    Instruction inst;
    auto opnum = bits(word, 54, 10);
    SS_ASSERT(opnum < static_cast<std::uint64_t>(Opcode::NumOpcodes),
              "undecodable opcode field ", opnum);
    inst.op = static_cast<Opcode>(opnum);
    inst.ra = static_cast<RegIndex>(bits(word, 48, 6));
    inst.rb = static_cast<RegIndex>(bits(word, 42, 6));
    inst.rc = static_cast<RegIndex>(bits(word, 36, 6));

    auto imm_field = static_cast<std::int32_t>(
        static_cast<std::uint32_t>(bits(word, 0, 32)));
    const OpTraits &t = inst.traits();
    if (t.isCondBranch || t.isUncondDirect) {
        inst.target = pc + instBytes +
                      static_cast<std::int64_t>(imm_field) *
                          static_cast<std::int64_t>(instBytes);
        inst.imm = 0;
    } else {
        inst.imm = imm_field;
    }
    return inst;
}

} // namespace specslice::isa
