/**
 * @file
 * Binary encoding of zsr instructions.
 *
 * Each instruction serializes to one 64-bit word:
 *
 *   bits [63:54]  opcode (10 bits)
 *   bits [53:48]  ra
 *   bits [47:42]  rb
 *   bits [41:36]  rc
 *   bits [35:32]  reserved (zero)
 *   bits [31:0]   immediate, or signed word displacement for direct
 *                 control transfers (target = pc + 8 + 8*disp)
 *
 * The simulator operates on decoded Instruction structs; the encoding
 * exists so programs can be stored in the simulated memory image and
 * round-tripped through it (and it defines the I-cache footprint:
 * 8 bytes per instruction).
 */

#ifndef SPECSLICE_ISA_ENCODING_HH
#define SPECSLICE_ISA_ENCODING_HH

#include <cstdint>

#include "common/types.hh"
#include "isa/instruction.hh"

namespace specslice::isa
{

/** Encode inst (located at pc) into a 64-bit word. */
std::uint64_t encode(const Instruction &inst, Addr pc);

/** Decode a 64-bit word fetched from pc back into an Instruction. */
Instruction decode(std::uint64_t word, Addr pc);

} // namespace specslice::isa

#endif // SPECSLICE_ISA_ENCODING_HH
