#include "isa/assembler.hh"

#include "common/logging.hh"

namespace specslice::isa
{

void
Assembler::label(const std::string &name)
{
    SS_ASSERT(!finished_, "assembler already finished");
    auto [it, inserted] = symbols_.emplace(name, here());
    if (!inserted)
        SS_FATAL("duplicate label '", name, "'");
}

void
Assembler::emit(Instruction inst)
{
    SS_ASSERT(!finished_, "assembler already finished");
    code_.push_back(inst);
}

void
Assembler::emitBranch(Opcode op, RegIndex ra, RegIndex rc,
                      const std::string &target)
{
    Instruction inst;
    inst.op = op;
    inst.ra = ra;
    inst.rc = rc;
    fixups_.push_back({code_.size(), target});
    emit(inst);
}

namespace
{

Instruction
rform(Opcode op, RegIndex rc, RegIndex ra, RegIndex rb)
{
    Instruction i;
    i.op = op;
    i.rc = rc;
    i.ra = ra;
    i.rb = rb;
    return i;
}

Instruction
iform(Opcode op, RegIndex rc, RegIndex ra, std::int32_t imm)
{
    Instruction i;
    i.op = op;
    i.rc = rc;
    i.ra = ra;
    i.imm = imm;
    return i;
}

} // namespace

// clang-format off
void Assembler::add(RegIndex rc, RegIndex ra, RegIndex rb)
{ emit(rform(Opcode::Add, rc, ra, rb)); }
void Assembler::sub(RegIndex rc, RegIndex ra, RegIndex rb)
{ emit(rform(Opcode::Sub, rc, ra, rb)); }
void Assembler::and_(RegIndex rc, RegIndex ra, RegIndex rb)
{ emit(rform(Opcode::And, rc, ra, rb)); }
void Assembler::or_(RegIndex rc, RegIndex ra, RegIndex rb)
{ emit(rform(Opcode::Or, rc, ra, rb)); }
void Assembler::xor_(RegIndex rc, RegIndex ra, RegIndex rb)
{ emit(rform(Opcode::Xor, rc, ra, rb)); }
void Assembler::sll(RegIndex rc, RegIndex ra, RegIndex rb)
{ emit(rform(Opcode::Sll, rc, ra, rb)); }
void Assembler::srl(RegIndex rc, RegIndex ra, RegIndex rb)
{ emit(rform(Opcode::Srl, rc, ra, rb)); }
void Assembler::sra(RegIndex rc, RegIndex ra, RegIndex rb)
{ emit(rform(Opcode::Sra, rc, ra, rb)); }
void Assembler::cmpeq(RegIndex rc, RegIndex ra, RegIndex rb)
{ emit(rform(Opcode::CmpEq, rc, ra, rb)); }
void Assembler::cmplt(RegIndex rc, RegIndex ra, RegIndex rb)
{ emit(rform(Opcode::CmpLt, rc, ra, rb)); }
void Assembler::cmple(RegIndex rc, RegIndex ra, RegIndex rb)
{ emit(rform(Opcode::CmpLe, rc, ra, rb)); }
void Assembler::cmpult(RegIndex rc, RegIndex ra, RegIndex rb)
{ emit(rform(Opcode::CmpUlt, rc, ra, rb)); }
void Assembler::s4add(RegIndex rc, RegIndex ra, RegIndex rb)
{ emit(rform(Opcode::S4Add, rc, ra, rb)); }
void Assembler::s8add(RegIndex rc, RegIndex ra, RegIndex rb)
{ emit(rform(Opcode::S8Add, rc, ra, rb)); }
void Assembler::cmoveq(RegIndex rc, RegIndex ra, RegIndex rb)
{ emit(rform(Opcode::CmovEq, rc, ra, rb)); }
void Assembler::cmovne(RegIndex rc, RegIndex ra, RegIndex rb)
{ emit(rform(Opcode::CmovNe, rc, ra, rb)); }
void Assembler::cmovlt(RegIndex rc, RegIndex ra, RegIndex rb)
{ emit(rform(Opcode::CmovLt, rc, ra, rb)); }

void Assembler::addi(RegIndex rc, RegIndex ra, std::int32_t imm)
{ emit(iform(Opcode::AddI, rc, ra, imm)); }
void Assembler::subi(RegIndex rc, RegIndex ra, std::int32_t imm)
{ emit(iform(Opcode::SubI, rc, ra, imm)); }
void Assembler::andi(RegIndex rc, RegIndex ra, std::int32_t imm)
{ emit(iform(Opcode::AndI, rc, ra, imm)); }
void Assembler::ori(RegIndex rc, RegIndex ra, std::int32_t imm)
{ emit(iform(Opcode::OrI, rc, ra, imm)); }
void Assembler::xori(RegIndex rc, RegIndex ra, std::int32_t imm)
{ emit(iform(Opcode::XorI, rc, ra, imm)); }
void Assembler::slli(RegIndex rc, RegIndex ra, std::int32_t imm)
{ emit(iform(Opcode::SllI, rc, ra, imm)); }
void Assembler::srli(RegIndex rc, RegIndex ra, std::int32_t imm)
{ emit(iform(Opcode::SrlI, rc, ra, imm)); }
void Assembler::srai(RegIndex rc, RegIndex ra, std::int32_t imm)
{ emit(iform(Opcode::SraI, rc, ra, imm)); }
void Assembler::cmpeqi(RegIndex rc, RegIndex ra, std::int32_t imm)
{ emit(iform(Opcode::CmpEqI, rc, ra, imm)); }
void Assembler::cmplti(RegIndex rc, RegIndex ra, std::int32_t imm)
{ emit(iform(Opcode::CmpLtI, rc, ra, imm)); }
void Assembler::cmplei(RegIndex rc, RegIndex ra, std::int32_t imm)
{ emit(iform(Opcode::CmpLeI, rc, ra, imm)); }
void Assembler::cmpulti(RegIndex rc, RegIndex ra, std::int32_t imm)
{ emit(iform(Opcode::CmpUltI, rc, ra, imm)); }
void Assembler::ldi(RegIndex rc, std::int32_t imm)
{ emit(iform(Opcode::Ldi, rc, regZero, imm)); }
void Assembler::mov(RegIndex rc, RegIndex ra)
{ emit(rform(Opcode::Or, rc, ra, regZero)); }

void Assembler::mul(RegIndex rc, RegIndex ra, RegIndex rb)
{ emit(rform(Opcode::Mul, rc, ra, rb)); }
void Assembler::div(RegIndex rc, RegIndex ra, RegIndex rb)
{ emit(rform(Opcode::Div, rc, ra, rb)); }

void Assembler::fadd(RegIndex rc, RegIndex ra, RegIndex rb)
{ emit(rform(Opcode::FAdd, rc, ra, rb)); }
void Assembler::fsub(RegIndex rc, RegIndex ra, RegIndex rb)
{ emit(rform(Opcode::FSub, rc, ra, rb)); }
void Assembler::fmul(RegIndex rc, RegIndex ra, RegIndex rb)
{ emit(rform(Opcode::FMul, rc, ra, rb)); }
void Assembler::fcmplt(RegIndex rc, RegIndex ra, RegIndex rb)
{ emit(rform(Opcode::FCmpLt, rc, ra, rb)); }
void Assembler::fcmple(RegIndex rc, RegIndex ra, RegIndex rb)
{ emit(rform(Opcode::FCmpLe, rc, ra, rb)); }
void Assembler::fcmpeq(RegIndex rc, RegIndex ra, RegIndex rb)
{ emit(rform(Opcode::FCmpEq, rc, ra, rb)); }
void Assembler::cvtif(RegIndex rc, RegIndex ra)
{ emit(rform(Opcode::CvtIF, rc, ra, regZero)); }
void Assembler::cvtfi(RegIndex rc, RegIndex ra)
{ emit(rform(Opcode::CvtFI, rc, ra, regZero)); }
// clang-format on

void
Assembler::ldi64(RegIndex rc, std::uint64_t value)
{
    if (static_cast<std::int64_t>(static_cast<std::int32_t>(value)) ==
        static_cast<std::int64_t>(value)) {
        // Fits in a sign-extended 32-bit immediate.
        ldi(rc, static_cast<std::int32_t>(value));
        return;
    }
    // Build in 16-bit chunks; ori immediates stay positive so sign
    // extension never contaminates the high bits.
    ldi(rc, static_cast<std::int32_t>(value >> 32));
    slli(rc, rc, 16);
    ori(rc, rc, static_cast<std::int32_t>((value >> 16) & 0xffff));
    slli(rc, rc, 16);
    ori(rc, rc, static_cast<std::int32_t>(value & 0xffff));
}

namespace
{

Instruction
memform(Opcode op, RegIndex rv, RegIndex rb, std::int32_t off, bool load)
{
    Instruction i;
    i.op = op;
    i.rb = rb;
    i.imm = off;
    if (load)
        i.rc = rv;
    else
        i.ra = rv;
    return i;
}

} // namespace

// clang-format off
void Assembler::ldq(RegIndex rc, RegIndex rb, std::int32_t off)
{ emit(memform(Opcode::Ldq, rc, rb, off, true)); }
void Assembler::ldl(RegIndex rc, RegIndex rb, std::int32_t off)
{ emit(memform(Opcode::Ldl, rc, rb, off, true)); }
void Assembler::ldbu(RegIndex rc, RegIndex rb, std::int32_t off)
{ emit(memform(Opcode::Ldbu, rc, rb, off, true)); }
void Assembler::stq(RegIndex ra, RegIndex rb, std::int32_t off)
{ emit(memform(Opcode::Stq, ra, rb, off, false)); }
void Assembler::stl(RegIndex ra, RegIndex rb, std::int32_t off)
{ emit(memform(Opcode::Stl, ra, rb, off, false)); }
void Assembler::stb(RegIndex ra, RegIndex rb, std::int32_t off)
{ emit(memform(Opcode::Stb, ra, rb, off, false)); }
void Assembler::prefetch(RegIndex rb, std::int32_t off)
{ emit(memform(Opcode::Prefetch, regZero, rb, off, true)); }

void Assembler::beq(RegIndex ra, const std::string &t)
{ emitBranch(Opcode::Beq, ra, regZero, t); }
void Assembler::bne(RegIndex ra, const std::string &t)
{ emitBranch(Opcode::Bne, ra, regZero, t); }
void Assembler::blt(RegIndex ra, const std::string &t)
{ emitBranch(Opcode::Blt, ra, regZero, t); }
void Assembler::ble(RegIndex ra, const std::string &t)
{ emitBranch(Opcode::Ble, ra, regZero, t); }
void Assembler::bgt(RegIndex ra, const std::string &t)
{ emitBranch(Opcode::Bgt, ra, regZero, t); }
void Assembler::bge(RegIndex ra, const std::string &t)
{ emitBranch(Opcode::Bge, ra, regZero, t); }
void Assembler::br(const std::string &t)
{ emitBranch(Opcode::Br, regZero, regZero, t); }
void Assembler::call(const std::string &t, RegIndex rc)
{ emitBranch(Opcode::Call, regZero, rc, t); }
// clang-format on

void
Assembler::jmp(RegIndex ra)
{
    Instruction i;
    i.op = Opcode::Jmp;
    i.ra = ra;
    emit(i);
}

void
Assembler::callr(RegIndex rb, RegIndex rc)
{
    Instruction i;
    i.op = Opcode::CallR;
    i.rb = rb;
    i.rc = rc;
    emit(i);
}

void
Assembler::ret(RegIndex ra)
{
    Instruction i;
    i.op = Opcode::Ret;
    i.ra = ra;
    emit(i);
}

void
Assembler::nop()
{
    emit(Instruction{});
}

void
Assembler::halt()
{
    Instruction i;
    i.op = Opcode::Halt;
    emit(i);
}

void
Assembler::sliceEnd()
{
    Instruction i;
    i.op = Opcode::SliceEnd;
    emit(i);
}

CodeSection
Assembler::finish()
{
    SS_ASSERT(!finished_, "assembler already finished");
    finished_ = true;

    for (const Fixup &f : fixups_) {
        auto it = symbols_.find(f.label);
        if (it == symbols_.end())
            SS_FATAL("undefined label '", f.label, "'");
        code_[f.index].target = it->second;
    }

    CodeSection sec;
    sec.base = base_;
    sec.code = std::move(code_);
    return sec;
}

} // namespace specslice::isa
