#include "isa/opcodes.hh"

#include "common/logging.hh"

namespace specslice::isa
{

namespace
{

// Shorthand flags for table readability.
constexpr bool Y = true;
constexpr bool N = false;

// One row per opcode, in enum order.
//                         mnem        fu                    lat ld st cbr ubr ind call ret wRc rRa rRb rRc imm
const OpTraits traitTable[] = {
    {"add",     FuClass::IntAlu,     1, N, N, N, N, N, N, N, Y, Y, Y, N, N},
    {"sub",     FuClass::IntAlu,     1, N, N, N, N, N, N, N, Y, Y, Y, N, N},
    {"and",     FuClass::IntAlu,     1, N, N, N, N, N, N, N, Y, Y, Y, N, N},
    {"or",      FuClass::IntAlu,     1, N, N, N, N, N, N, N, Y, Y, Y, N, N},
    {"xor",     FuClass::IntAlu,     1, N, N, N, N, N, N, N, Y, Y, Y, N, N},
    {"sll",     FuClass::IntAlu,     1, N, N, N, N, N, N, N, Y, Y, Y, N, N},
    {"srl",     FuClass::IntAlu,     1, N, N, N, N, N, N, N, Y, Y, Y, N, N},
    {"sra",     FuClass::IntAlu,     1, N, N, N, N, N, N, N, Y, Y, Y, N, N},
    {"cmpeq",   FuClass::IntAlu,     1, N, N, N, N, N, N, N, Y, Y, Y, N, N},
    {"cmplt",   FuClass::IntAlu,     1, N, N, N, N, N, N, N, Y, Y, Y, N, N},
    {"cmple",   FuClass::IntAlu,     1, N, N, N, N, N, N, N, Y, Y, Y, N, N},
    {"cmpult",  FuClass::IntAlu,     1, N, N, N, N, N, N, N, Y, Y, Y, N, N},
    {"s4add",   FuClass::IntAlu,     1, N, N, N, N, N, N, N, Y, Y, Y, N, N},
    {"s8add",   FuClass::IntAlu,     1, N, N, N, N, N, N, N, Y, Y, Y, N, N},
    {"cmoveq",  FuClass::IntAlu,     1, N, N, N, N, N, N, N, Y, Y, Y, Y, N},
    {"cmovne",  FuClass::IntAlu,     1, N, N, N, N, N, N, N, Y, Y, Y, Y, N},
    {"cmovlt",  FuClass::IntAlu,     1, N, N, N, N, N, N, N, Y, Y, Y, Y, N},
    {"addi",    FuClass::IntAlu,     1, N, N, N, N, N, N, N, Y, Y, N, N, Y},
    {"subi",    FuClass::IntAlu,     1, N, N, N, N, N, N, N, Y, Y, N, N, Y},
    {"andi",    FuClass::IntAlu,     1, N, N, N, N, N, N, N, Y, Y, N, N, Y},
    {"ori",     FuClass::IntAlu,     1, N, N, N, N, N, N, N, Y, Y, N, N, Y},
    {"xori",    FuClass::IntAlu,     1, N, N, N, N, N, N, N, Y, Y, N, N, Y},
    {"slli",    FuClass::IntAlu,     1, N, N, N, N, N, N, N, Y, Y, N, N, Y},
    {"srli",    FuClass::IntAlu,     1, N, N, N, N, N, N, N, Y, Y, N, N, Y},
    {"srai",    FuClass::IntAlu,     1, N, N, N, N, N, N, N, Y, Y, N, N, Y},
    {"cmpeqi",  FuClass::IntAlu,     1, N, N, N, N, N, N, N, Y, Y, N, N, Y},
    {"cmplti",  FuClass::IntAlu,     1, N, N, N, N, N, N, N, Y, Y, N, N, Y},
    {"cmplei",  FuClass::IntAlu,     1, N, N, N, N, N, N, N, Y, Y, N, N, Y},
    {"cmpulti", FuClass::IntAlu,     1, N, N, N, N, N, N, N, Y, Y, N, N, Y},
    {"ldi",     FuClass::IntAlu,     1, N, N, N, N, N, N, N, Y, N, N, N, Y},
    {"mul",     FuClass::IntComplex, 7, N, N, N, N, N, N, N, Y, Y, Y, N, N},
    {"div",     FuClass::IntComplex,20, N, N, N, N, N, N, N, Y, Y, Y, N, N},
    {"fadd",    FuClass::FpAlu,      4, N, N, N, N, N, N, N, Y, Y, Y, N, N},
    {"fsub",    FuClass::FpAlu,      4, N, N, N, N, N, N, N, Y, Y, Y, N, N},
    {"fmul",    FuClass::FpAlu,      4, N, N, N, N, N, N, N, Y, Y, Y, N, N},
    {"fcmplt",  FuClass::FpAlu,      4, N, N, N, N, N, N, N, Y, Y, Y, N, N},
    {"fcmple",  FuClass::FpAlu,      4, N, N, N, N, N, N, N, Y, Y, Y, N, N},
    {"fcmpeq",  FuClass::FpAlu,      4, N, N, N, N, N, N, N, Y, Y, Y, N, N},
    {"cvtif",   FuClass::FpAlu,      4, N, N, N, N, N, N, N, Y, Y, N, N, N},
    {"cvtfi",   FuClass::FpAlu,      4, N, N, N, N, N, N, N, Y, Y, N, N, N},
    {"ldq",     FuClass::MemPort,    3, Y, N, N, N, N, N, N, Y, N, Y, N, Y},
    {"ldl",     FuClass::MemPort,    3, Y, N, N, N, N, N, N, Y, N, Y, N, Y},
    {"ldbu",    FuClass::MemPort,    3, Y, N, N, N, N, N, N, Y, N, Y, N, Y},
    {"stq",     FuClass::MemPort,    1, N, Y, N, N, N, N, N, N, Y, Y, N, Y},
    {"stl",     FuClass::MemPort,    1, N, Y, N, N, N, N, N, N, Y, Y, N, Y},
    {"stb",     FuClass::MemPort,    1, N, Y, N, N, N, N, N, N, Y, Y, N, Y},
    {"prefetch",FuClass::MemPort,    3, Y, N, N, N, N, N, N, N, N, Y, N, Y},
    {"beq",     FuClass::Branch,     1, N, N, Y, N, N, N, N, N, Y, N, N, N},
    {"bne",     FuClass::Branch,     1, N, N, Y, N, N, N, N, N, Y, N, N, N},
    {"blt",     FuClass::Branch,     1, N, N, Y, N, N, N, N, N, Y, N, N, N},
    {"ble",     FuClass::Branch,     1, N, N, Y, N, N, N, N, N, Y, N, N, N},
    {"bgt",     FuClass::Branch,     1, N, N, Y, N, N, N, N, N, Y, N, N, N},
    {"bge",     FuClass::Branch,     1, N, N, Y, N, N, N, N, N, Y, N, N, N},
    {"br",      FuClass::Branch,     1, N, N, N, Y, N, N, N, N, N, N, N, N},
    {"call",    FuClass::Branch,     1, N, N, N, Y, N, Y, N, Y, N, N, N, N},
    {"jmp",     FuClass::Branch,     1, N, N, N, N, Y, N, N, N, Y, N, N, N},
    {"callr",   FuClass::Branch,     1, N, N, N, N, Y, Y, N, Y, N, Y, N, N},
    {"ret",     FuClass::Branch,     1, N, N, N, N, Y, N, Y, N, Y, N, N, N},
    {"nop",     FuClass::None,       1, N, N, N, N, N, N, N, N, N, N, N, N},
    {"halt",    FuClass::None,       1, N, N, N, N, N, N, N, N, N, N, N, N},
    {"slice_end",FuClass::None,      1, N, N, N, N, N, N, N, N, N, N, N, N},
};

static_assert(sizeof(traitTable) / sizeof(traitTable[0]) ==
                  static_cast<std::size_t>(Opcode::NumOpcodes),
              "trait table out of sync with Opcode enum");

} // namespace

const OpTraits &
opTraits(Opcode op)
{
    auto idx = static_cast<std::size_t>(op);
    SS_ASSERT(idx < static_cast<std::size_t>(Opcode::NumOpcodes),
              "bad opcode ", idx);
    return traitTable[idx];
}

} // namespace specslice::isa
