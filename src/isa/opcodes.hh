/**
 * @file
 * The zsr instruction set: an Alpha-like 64-bit RISC ISA sufficient to
 * express the paper's workloads and speculative slices.
 *
 * Conventions:
 *  - 64 general 64-bit registers; r63 is hardwired to zero and r62 is
 *    the link register by convention.
 *  - Instructions occupy 8 bytes of instruction memory each.
 *  - R-format:  rc = ra OP rb
 *  - I-format:  rc = ra OP imm (imm is a signed 32-bit immediate)
 *  - Memory:    loads  rc = MEM[rb + imm]; stores MEM[rb + imm] = ra
 *  - Branches:  compare ra against zero (Alpha style); direct targets
 *    are resolved to absolute addresses by the assembler.
 *  - FP values live in the general registers as IEEE double bit
 *    patterns; FP compares produce an integer 0/1 so the integer
 *    branches can consume them.
 */

#ifndef SPECSLICE_ISA_OPCODES_HH
#define SPECSLICE_ISA_OPCODES_HH

#include <cstdint>

namespace specslice::isa
{

/** Byte distance between consecutive instructions. */
constexpr std::uint64_t instBytes = 8;

/** Number of architectural registers. */
constexpr unsigned numRegs = 64;

/** Hardwired zero register. */
constexpr std::uint8_t regZero = 63;

/** Conventional link (return-address) register. */
constexpr std::uint8_t regLink = 62;

/** Every operation in the zsr ISA. */
enum class Opcode : std::uint16_t
{
    // Simple integer ALU, register form.
    Add, Sub, And, Or, Xor, Sll, Srl, Sra,
    CmpEq, CmpLt, CmpLe, CmpUlt,
    S4Add,          ///< rc = (ra << 2) + rb
    S8Add,          ///< rc = (ra << 3) + rb
    CmovEq,         ///< rc = rb if ra == 0 (rc also a source)
    CmovNe,         ///< rc = rb if ra != 0 (rc also a source)
    CmovLt,         ///< rc = rb if ra <  0 (rc also a source)
    // Simple integer ALU, immediate form.
    AddI, SubI, AndI, OrI, XorI, SllI, SrlI, SraI,
    CmpEqI, CmpLtI, CmpLeI, CmpUltI,
    Ldi,            ///< rc = sign-extended imm
    // Complex integer (single complex unit, long latency).
    Mul, Div,
    // Floating point (operands are double bit patterns).
    FAdd, FSub, FMul,
    FCmpLt,         ///< rc = (double)ra <  (double)rb ? 1 : 0
    FCmpLe,         ///< rc = (double)ra <= (double)rb ? 1 : 0
    FCmpEq,         ///< rc = (double)ra == (double)rb ? 1 : 0
    CvtIF,          ///< rc = bits(double(int64(ra)))
    CvtFI,          ///< rc = int64(double-bits(ra))
    // Memory.
    Ldq,            ///< rc = MEM64[rb + imm]
    Ldl,            ///< rc = sign-extended MEM32[rb + imm]
    Ldbu,           ///< rc = zero-extended MEM8[rb + imm]
    Stq,            ///< MEM64[rb + imm] = ra
    Stl,            ///< MEM32[rb + imm] = low32(ra)
    Stb,            ///< MEM8[rb + imm] = low8(ra)
    Prefetch,       ///< load-like, no destination, never faults
    // Control.
    Beq, Bne, Blt, Ble, Bgt, Bge,   ///< conditional on ra vs zero
    Br,             ///< unconditional direct
    Call,           ///< direct call: rc = return address, pc = target
    Jmp,            ///< unconditional indirect: pc = ra
    CallR,          ///< indirect call: rc = return address, pc = rb
    Ret,            ///< indirect return: pc = ra (pops RAS)
    // Misc.
    Nop,
    Halt,           ///< terminates the main program
    SliceEnd,       ///< terminates a helper (slice) thread

    NumOpcodes
};

/** Functional unit classes (Table 1's execution core). */
enum class FuClass : std::uint8_t
{
    IntAlu,     ///< full complement of simple integer units
    IntComplex, ///< single complex integer unit (mul/div)
    FpAlu,      ///< floating point (shares simple unit count)
    MemPort,    ///< load/store ports
    Branch,     ///< resolved on a simple unit
    None,       ///< nop/halt consume no unit
};

/** Static properties of an opcode. */
struct OpTraits
{
    const char *mnemonic;
    FuClass fu;
    std::uint8_t latency;    ///< execute latency in cycles
    bool isLoad;
    bool isStore;
    bool isCondBranch;
    bool isUncondDirect;     ///< br / call
    bool isIndirect;         ///< jmp / callr / ret
    bool isCall;
    bool isReturn;
    bool writesRc;
    bool readsRa;
    bool readsRb;
    bool readsRc;            ///< cmov reads its destination
    bool hasImm;
};

/** @return the static traits of op. */
const OpTraits &opTraits(Opcode op);

/** @return true if op transfers control (any branch/jump/call/ret). */
inline bool
isControl(Opcode op)
{
    const OpTraits &t = opTraits(op);
    return t.isCondBranch || t.isUncondDirect || t.isIndirect;
}

/** @return true if op accesses data memory. */
inline bool
isMem(Opcode op)
{
    const OpTraits &t = opTraits(op);
    return t.isLoad || t.isStore;
}

} // namespace specslice::isa

#endif // SPECSLICE_ISA_OPCODES_HH
