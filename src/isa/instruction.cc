#include "isa/instruction.hh"

#include <sstream>

namespace specslice::isa
{

namespace
{

std::string
regName(RegIndex r)
{
    if (r == regZero)
        return "rz";
    if (r == regLink)
        return "ra";
    return "r" + std::to_string(static_cast<unsigned>(r));
}

} // namespace

std::string
Instruction::disassemble() const
{
    const OpTraits &t = traits();
    std::ostringstream os;
    os << t.mnemonic;

    if (t.isLoad) {
        if (t.writesRc)
            os << ' ' << regName(rc) << ", " << imm << '(' << regName(rb)
               << ')';
        else
            os << ' ' << imm << '(' << regName(rb) << ')';
    } else if (t.isStore) {
        os << ' ' << regName(ra) << ", " << imm << '(' << regName(rb)
           << ')';
    } else if (t.isCondBranch) {
        os << ' ' << regName(ra) << ", 0x" << std::hex << target;
    } else if (t.isUncondDirect) {
        if (t.writesRc)
            os << ' ' << regName(rc) << ',';
        os << " 0x" << std::hex << target;
    } else if (t.isIndirect) {
        if (t.writesRc)
            os << ' ' << regName(rc) << ", (" << regName(rb) << ')';
        else
            os << " (" << regName(ra) << ')';
    } else if (op == Opcode::Ldi) {
        os << ' ' << regName(rc) << ", " << imm;
    } else if (t.writesRc) {
        os << ' ' << regName(rc) << ", " << regName(ra);
        if (t.readsRb)
            os << ", " << regName(rb);
        if (t.hasImm)
            os << ", " << imm;
    }
    return os.str();
}

} // namespace specslice::isa
