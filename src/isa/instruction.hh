/**
 * @file
 * The in-memory representation of a single static zsr instruction.
 */

#ifndef SPECSLICE_ISA_INSTRUCTION_HH
#define SPECSLICE_ISA_INSTRUCTION_HH

#include <cstdint>
#include <string>

#include "common/types.hh"
#include "isa/opcodes.hh"

namespace specslice::isa
{

/**
 * A decoded static instruction. Direct control-transfer targets are
 * stored as absolute addresses (the assembler resolves labels); the
 * binary encoding serializes them PC-relative.
 */
struct Instruction
{
    Opcode op = Opcode::Nop;
    RegIndex ra = regZero;
    RegIndex rb = regZero;
    RegIndex rc = regZero;
    std::int32_t imm = 0;
    Addr target = invalidAddr;  ///< absolute target for direct transfers

    const OpTraits &traits() const { return opTraits(op); }

    bool isLoad() const { return traits().isLoad; }
    bool isStore() const { return traits().isStore; }
    bool isMem() const { return isLoad() || isStore(); }
    bool isCondBranch() const { return traits().isCondBranch; }
    bool isControl() const { return isa::isControl(op); }
    bool isIndirect() const { return traits().isIndirect; }
    bool isCall() const { return traits().isCall; }
    bool isReturn() const { return traits().isReturn; }
    bool writesReg() const { return traits().writesRc; }

    /** @return true if this transfer's target is known statically. */
    bool
    hasStaticTarget() const
    {
        return (traits().isCondBranch || traits().isUncondDirect) &&
               target != invalidAddr;
    }

    bool operator==(const Instruction &o) const = default;

    /** @return a human-readable disassembly of this instruction. */
    std::string disassemble() const;
};

} // namespace specslice::isa

#endif // SPECSLICE_ISA_INSTRUCTION_HH
