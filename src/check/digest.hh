/**
 * @file
 * Golden stat digests: the canonical, schema-versioned per-workload
 * record of simulator statistics that tools/specslice_verify emits
 * and regression-checks against the committed corpus under golden/.
 *
 * A digest is a line-based text document (trivially diffable in code
 * review) holding the run parameters and, per configuration
 * ("baseline", "slices"), every integer counter plus the
 * cycle-derived ratios:
 *
 *     # comment
 *     schema_version 1
 *     workload vpr
 *     insts 20000
 *     warmup 5000
 *     seed 1
 *     width 4
 *     threads 4
 *     config baseline
 *     counter cycles 123456
 *     counter main_retired 25000
 *     ratio ipc 0.81234
 *     config slices
 *     ...
 *
 * Comparison rules (diffDigests): integer counters — instruction,
 * retirement, event counts — must match exactly; ratios (doubles that
 * round-trip through decimal text) compare within a relative epsilon.
 */

#ifndef SPECSLICE_CHECK_DIGEST_HH
#define SPECSLICE_CHECK_DIGEST_HH

#include <cstdint>
#include <istream>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace specslice::check
{

/**
 * Digest grammar/semantics version. Bump ONLY when the file format or
 * the meaning of existing keys changes (renames, unit changes, new
 * mandatory keys); regenerating digests after an intentional
 * simulator-behavior change updates the data, not the schema.
 */
constexpr std::uint64_t digestSchemaVersion = 1;

/** Relative tolerance for ratio comparison (decimal round-trip). */
constexpr double digestRatioEpsilon = 1e-9;

struct Digest
{
    std::uint64_t schemaVersion = digestSchemaVersion;
    std::string workload;
    std::uint64_t insts = 0;
    std::uint64_t warmup = 0;
    std::uint64_t seed = 0;
    unsigned width = 0;
    unsigned threads = 0;
    /**
     * Sampling configuration (all 0 for a full run). Optional keys:
     * written only when non-zero, absent keys parse as 0, so digests
     * from full runs — including the whole pre-sampling corpus —
     * round-trip unchanged. A sampled digest's counters cover only
     * the sampled regions and are NOT comparable to a full run's;
     * diffDigests reports that as a sampling-config mismatch instead
     * of a wall of counter diffs.
     */
    std::uint64_t fastforward = 0;  ///< insts skipped before region 1
    std::uint64_t regions = 0;      ///< sampled regions (0 = full run)
    std::uint64_t stride = 0;       ///< insts between region starts

    struct Section
    {
        std::string config;  ///< "baseline" or "slices"
        std::map<std::string, std::uint64_t> counters;
        std::map<std::string, double> ratios;
    };
    std::vector<Section> sections;

    const Section *findSection(const std::string &config) const;
};

/** Serialize canonically (sorted counters, stable float formatting). */
std::string formatDigest(const Digest &d);

/**
 * Parse a digest document. On grammar errors returns nullopt and sets
 * `error` to a "line N: what" diagnostic. Semantic problems (bad
 * schema version, NaN ratios, missing sections) are lintDigest's job.
 */
std::optional<Digest> parseDigest(std::istream &in, std::string &error);

/**
 * Semantic validation: schema version, run parameters, required
 * sections/counters, finite non-negative ratios.
 * @return one message per problem; empty = clean.
 */
std::vector<std::string> lintDigest(const Digest &d);

/**
 * Compare a live digest against the golden one: exact equality for
 * every integer counter (and counter *set*), relative-epsilon
 * equality for ratios, and identical run parameters.
 * @return one message per mismatch; empty = match.
 */
std::vector<std::string> diffDigests(const Digest &golden,
                                     const Digest &live,
                                     double ratio_eps = digestRatioEpsilon);

} // namespace specslice::check

#endif // SPECSLICE_CHECK_DIGEST_HH
