#include "check/digest.hh"

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace specslice::check
{

namespace
{

/** Strict non-negative integer parse (no sign, no trailing junk). */
bool
parseU64(const std::string &s, std::uint64_t &out)
{
    if (s.empty() || s[0] == '-' || s[0] == '+')
        return false;
    errno = 0;
    char *end = nullptr;
    unsigned long long v = std::strtoull(s.c_str(), &end, 10);
    if (errno == ERANGE || !end || *end != '\0')
        return false;
    out = v;
    return true;
}

/** Double parse accepting what formatDigest writes (%.17g). */
bool
parseF64(const std::string &s, double &out)
{
    if (s.empty())
        return false;
    errno = 0;
    char *end = nullptr;
    double v = std::strtod(s.c_str(), &end);
    if (errno == ERANGE || !end || *end != '\0')
        return false;
    out = v;
    return true;
}

std::string
formatRatio(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

} // namespace

const Digest::Section *
Digest::findSection(const std::string &config) const
{
    for (const Section &s : sections)
        if (s.config == config)
            return &s;
    return nullptr;
}

std::string
formatDigest(const Digest &d)
{
    std::ostringstream os;
    os << "# specslice golden stat digest (do not edit by hand;\n"
       << "# regenerate: specslice_verify --generate golden/)\n";
    os << "schema_version " << d.schemaVersion << "\n";
    os << "workload " << d.workload << "\n";
    os << "insts " << d.insts << "\n";
    os << "warmup " << d.warmup << "\n";
    os << "seed " << d.seed << "\n";
    os << "width " << d.width << "\n";
    os << "threads " << d.threads << "\n";
    // Sampling keys are optional: omitted for full runs so the
    // committed full-run corpus round-trips byte-identically.
    if (d.fastforward)
        os << "fastforward " << d.fastforward << "\n";
    if (d.regions)
        os << "regions " << d.regions << "\n";
    if (d.stride)
        os << "stride " << d.stride << "\n";
    for (const Digest::Section &s : d.sections) {
        os << "config " << s.config << "\n";
        for (const auto &[k, v] : s.counters)
            os << "counter " << k << " " << v << "\n";
        for (const auto &[k, v] : s.ratios)
            os << "ratio " << k << " " << formatRatio(v) << "\n";
    }
    return os.str();
}

std::optional<Digest>
parseDigest(std::istream &in, std::string &error)
{
    Digest d;
    d.schemaVersion = 0;  // must be stated explicitly
    Digest::Section *cur = nullptr;
    std::string line;
    std::size_t lineno = 0;

    auto fail = [&](const std::string &msg) {
        std::ostringstream os;
        os << "line " << lineno << ": " << msg;
        error = os.str();
        return std::nullopt;
    };

    while (std::getline(in, line)) {
        ++lineno;
        if (line.empty() || line[0] == '#')
            continue;

        std::istringstream ls(line);
        std::string key, a, b, extra;
        ls >> key >> a;
        bool has_b = static_cast<bool>(ls >> b);
        if (ls >> extra)
            return fail("trailing garbage after '" + key + "'");

        auto headerU64 = [&](std::uint64_t &out) -> bool {
            return !has_b && parseU64(a, out);
        };

        if (key == "schema_version") {
            if (!headerU64(d.schemaVersion))
                return fail("bad schema_version value");
        } else if (key == "workload") {
            if (has_b || a.empty())
                return fail("bad workload name");
            d.workload = a;
        } else if (key == "insts") {
            if (!headerU64(d.insts))
                return fail("bad insts value");
        } else if (key == "warmup") {
            if (!headerU64(d.warmup))
                return fail("bad warmup value");
        } else if (key == "seed") {
            if (!headerU64(d.seed))
                return fail("bad seed value");
        } else if (key == "width") {
            std::uint64_t v;
            if (!headerU64(v))
                return fail("bad width value");
            d.width = static_cast<unsigned>(v);
        } else if (key == "threads") {
            std::uint64_t v;
            if (!headerU64(v))
                return fail("bad threads value");
            d.threads = static_cast<unsigned>(v);
        } else if (key == "fastforward") {
            if (!headerU64(d.fastforward))
                return fail("bad fastforward value");
        } else if (key == "regions") {
            if (!headerU64(d.regions))
                return fail("bad regions value");
        } else if (key == "stride") {
            if (!headerU64(d.stride))
                return fail("bad stride value");
        } else if (key == "config") {
            if (has_b || a.empty())
                return fail("bad config name");
            d.sections.emplace_back();
            d.sections.back().config = a;
            cur = &d.sections.back();
        } else if (key == "counter") {
            if (!cur)
                return fail("'counter' before any 'config'");
            std::uint64_t v;
            if (!has_b || !parseU64(b, v))
                return fail("counter '" + a +
                            "' needs a non-negative integer value");
            if (!cur->counters.emplace(a, v).second)
                return fail("duplicate counter '" + a + "'");
        } else if (key == "ratio") {
            if (!cur)
                return fail("'ratio' before any 'config'");
            double v;
            if (!has_b || !parseF64(b, v))
                return fail("ratio '" + a + "' needs a numeric value");
            if (!cur->ratios.emplace(a, v).second)
                return fail("duplicate ratio '" + a + "'");
        } else {
            return fail("unknown directive '" + key + "'");
        }
    }
    return d;
}

std::vector<std::string>
lintDigest(const Digest &d)
{
    std::vector<std::string> problems;
    auto bad = [&](const std::string &msg) { problems.push_back(msg); };

    if (d.schemaVersion != digestSchemaVersion) {
        std::ostringstream os;
        os << "schema_version " << d.schemaVersion << " != supported "
           << digestSchemaVersion;
        bad(os.str());
    }
    if (d.workload.empty())
        bad("missing workload name");
    if (d.insts == 0)
        bad("insts must be > 0");
    if (d.width == 0)
        bad("width must be > 0");
    if (d.threads == 0)
        bad("threads must be > 0");

    for (const char *req : {"baseline", "slices"}) {
        if (!d.findSection(req))
            bad(std::string("missing '") + req + "' section");
    }
    for (const Digest::Section &s : d.sections) {
        std::size_t copies = 0;
        for (const Digest::Section &o : d.sections)
            if (o.config == s.config)
                ++copies;
        if (copies > 1) {
            bad("duplicate config '" + s.config + "'");
            break;
        }
    }

    for (const Digest::Section &s : d.sections) {
        const std::string at = "config " + s.config + ": ";
        if (s.counters.empty())
            bad(at + "no counters");
        for (const char *req : {"cycles", "main_retired"}) {
            auto it = s.counters.find(req);
            if (it == s.counters.end())
                bad(at + "missing required counter '" + req + "'");
            else if (it->second == 0)
                bad(at + "counter '" + req + "' is zero");
        }
        for (const auto &[k, v] : s.ratios) {
            if (!std::isfinite(v))
                bad(at + "ratio '" + k + "' is not finite");
            else if (v < 0)
                bad(at + "ratio '" + k + "' is negative");
        }
    }
    return problems;
}

std::vector<std::string>
diffDigests(const Digest &golden, const Digest &live, double ratio_eps)
{
    std::vector<std::string> out;
    auto mism = [&](const std::string &msg) { out.push_back(msg); };

    auto cmpU64 = [&](const char *what, std::uint64_t g,
                      std::uint64_t l) {
        if (g != l) {
            std::ostringstream os;
            os << what << ": golden " << g << ", live " << l;
            mism(os.str());
        }
    };
    cmpU64("schema_version", golden.schemaVersion, live.schemaVersion);
    if (golden.workload != live.workload)
        mism("workload: golden '" + golden.workload + "', live '" +
             live.workload + "'");
    cmpU64("insts", golden.insts, live.insts);
    cmpU64("warmup", golden.warmup, live.warmup);
    cmpU64("seed", golden.seed, live.seed);
    cmpU64("width", golden.width, live.width);
    cmpU64("threads", golden.threads, live.threads);

    // Sampling config is part of a run's identity: a sampled run's
    // counters cover only its regions, so comparing them against a
    // full run (or a differently-sampled one) produces nothing but
    // noise. Say that once, clearly, instead.
    const bool sampling_mismatch = golden.fastforward != live.fastforward ||
                                   golden.regions != live.regions ||
                                   golden.stride != live.stride;
    if (sampling_mismatch) {
        auto desc = [](const Digest &d) {
            if (!d.fastforward && !d.regions && !d.stride)
                return std::string("full run");
            std::ostringstream os;
            os << "sampled (fastforward " << d.fastforward
               << ", regions " << d.regions << ", stride " << d.stride
               << ")";
            return os.str();
        };
        mism("sampling config mismatch: golden is " + desc(golden) +
             ", live is " + desc(live) +
             "; counters cover different regions and are not "
             "comparable — regenerate the golden digest with the "
             "same sampling configuration");
        // Per-counter diffs between differently-sampled runs are pure
        // noise; stop at the real problem.
        return out;
    }

    for (const Digest::Section &gs : golden.sections) {
        const Digest::Section *ls = live.findSection(gs.config);
        if (!ls) {
            mism("config '" + gs.config + "' missing from live run");
            continue;
        }
        const std::string at = gs.config + ".";
        for (const auto &[k, gv] : gs.counters) {
            auto it = ls->counters.find(k);
            if (it == ls->counters.end()) {
                mism(at + k + ": missing from live run");
                continue;
            }
            if (it->second != gv) {
                std::ostringstream os;
                os << at << k << ": golden " << gv << ", live "
                   << it->second;
                mism(os.str());
            }
        }
        for (const auto &[k, lv] : ls->counters) {
            (void)lv;
            if (!gs.counters.count(k))
                mism(at + k +
                     ": new counter not in golden digest (regenerate)");
        }
        for (const auto &[k, gv] : gs.ratios) {
            auto it = ls->ratios.find(k);
            if (it == ls->ratios.end()) {
                mism(at + k + ": ratio missing from live run");
                continue;
            }
            double lv = it->second;
            double scale = std::max(
                {1.0, std::fabs(gv), std::fabs(lv)});
            bool both_nan = std::isnan(gv) && std::isnan(lv);
            if (!both_nan && !(std::fabs(gv - lv) <= ratio_eps * scale)) {
                std::ostringstream os;
                os << at << k << ": golden " << formatRatio(gv)
                   << ", live " << formatRatio(lv);
                mism(os.str());
            }
        }
        for (const auto &[k, lv] : ls->ratios) {
            (void)lv;
            if (!gs.ratios.count(k))
                mism(at + k +
                     ": new ratio not in golden digest (regenerate)");
        }
    }
    for (const Digest::Section &ls : live.sections) {
        if (!golden.findSection(ls.config))
            mism("config '" + ls.config +
                 "' not in golden digest (regenerate)");
    }
    return out;
}

} // namespace specslice::check
