/**
 * @file
 * Differential-correctness checking for the SMT core (gem5 CheckerCPU
 * style): a fast in-order functional reference interpreter for the
 * `zsr` ISA co-simulates with the timing core. At every main-thread
 * retirement the core reports what it retired (PC, destination
 * register writeback, store address/data, branch direction); the
 * checker steps its own architectural state one instruction with
 * arch::execute and compares. The first divergence is latched with a
 * ring of the last N retired instructions so the failure can be
 * localised to one dynamic instruction.
 *
 * The checker is pure observation: it never feeds anything back into
 * the timing model, so an attached checker cannot change simulation
 * results. Builds configured with -DSS_CHECK_DISABLED=ON compile the
 * retire hook out entirely.
 */

#ifndef SPECSLICE_CHECK_CHECKER_HH
#define SPECSLICE_CHECK_CHECKER_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <string>

#include "arch/exec.hh"
#include "arch/memimg.hh"
#include "arch/regfile.hh"
#include "common/types.hh"
#include "isa/program.hh"

namespace specslice::check
{

/** What the timing core observed at one main-thread retirement. */
struct RetireRecord
{
    SeqNum seq = invalidSeqNum;
    Addr pc = invalidAddr;
    bool wroteReg = false;       ///< architectural register writeback
    RegIndex reg = 0;            ///< destination register (wroteReg)
    std::uint64_t value = 0;     ///< writeback value (wroteReg)
    bool isStore = false;
    Addr storeAddr = invalidAddr;
    std::uint64_t storeData = 0; ///< truncated to the store width
    bool isCondBranch = false;
    bool taken = false;          ///< resolved direction (isCondBranch)
    Addr nextPc = invalidAddr;   ///< architectural successor PC
    /** 1-based retirement index, filled in by the checker. */
    std::uint64_t index = 0;
};

/** Which architectural fact disagreed first. */
enum class DivergenceKind
{
    None,
    Pc,            ///< retired PC != reference PC
    UnmappedPc,    ///< reference PC decodes to no instruction
    RegWriteback,  ///< destination register value (or write/no-write)
    StoreAddr,
    StoreData,
    BranchDirection,
    NextPc,
};

const char *divergenceKindName(DivergenceKind kind);

/** The latched first divergence. */
struct Divergence
{
    DivergenceKind kind = DivergenceKind::None;
    RetireRecord record;          ///< the diverging retirement
    std::uint64_t expected = 0;   ///< reference value
    std::uint64_t actual = 0;     ///< value the core retired
};

struct CheckerConfig
{
    /** Retired-instruction ring kept for the divergence report. */
    unsigned historyDepth = 16;
    /** SS_FATAL with the full report at the first divergence
     *  (the default wired through sim::Simulator); tests latch
     *  instead and inspect divergence(). */
    bool panicOnDivergence = false;
    /**
     * Mutation-style self-test hooks: corrupt the observed value
     * of the Nth (1-based) register-writing / storing retirement
     * before comparison, so a healthy checker must report a
     * divergence at exactly that instruction. 0 = off.
     */
    std::uint64_t injectRegFaultAt = 0;
    std::uint64_t injectStoreFaultAt = 0;
};

/**
 * The retirement-time architectural checker. One instance checks one
 * run (one entry PC, one initial memory image); parallel sweeps give
 * each job its own instance.
 */
class RetireChecker
{
  public:
    using Config = CheckerConfig;

    /**
     * @param program the static code image (shared, must outlive us)
     * @param entry architectural start PC
     * @param init_mem builds the reference's own initial memory image
     *        (same initializer the timing core's image got; may be
     *        null for programs that touch no pre-initialised data)
     */
    RetireChecker(const isa::Program &program, Addr entry,
                  const std::function<void(arch::MemoryImage &)> &init_mem,
                  Config cfg = {});

    /**
     * Start the reference mid-program from an architectural snapshot
     * (sampled/checkpointed runs): the timing core being checked must
     * begin from the same pc/registers/memory.
     */
    RetireChecker(const isa::Program &program, Addr start_pc,
                  const arch::RegFile &regs, arch::MemoryImage mem,
                  Config cfg = {});

    /** Check one main-thread retirement against the reference. */
    void onRetire(const RetireRecord &observed);

    bool diverged() const { return div_.kind != DivergenceKind::None; }
    const Divergence &divergence() const { return div_; }

    /** Retirements checked (including the diverging one). */
    std::uint64_t checkedCount() const { return checked_; }

    /** Reference state peeks (tests). */
    Addr refPc() const { return refPc_; }
    const arch::RegFile &refRegs() const { return regs_; }

    /**
     * Human-readable first-divergence report: what disagreed, the
     * expected/actual values, and the last historyDepth retired
     * instructions with disassembly. Empty when !diverged().
     */
    std::string report() const;

  private:
    void diverge(DivergenceKind kind, const RetireRecord &rec,
                 std::uint64_t expected, std::uint64_t actual);

    const isa::Program &program_;
    Config cfg_;

    // Reference architectural state.
    Addr refPc_;
    bool refHalted_ = false;
    arch::RegFile regs_;
    arch::MemoryImage mem_;

    // Checking state.
    std::uint64_t checked_ = 0;
    std::uint64_t regWrites_ = 0;  ///< reg-writing retirements seen
    std::uint64_t stores_ = 0;     ///< store retirements seen
    std::deque<RetireRecord> history_;
    Divergence div_;
};

} // namespace specslice::check

#endif // SPECSLICE_CHECK_CHECKER_HH
