#include "check/checker.hh"

#include <iomanip>
#include <sstream>

#include "common/logging.hh"

namespace specslice::check
{

const char *
divergenceKindName(DivergenceKind kind)
{
    switch (kind) {
      case DivergenceKind::None:
        return "none";
      case DivergenceKind::Pc:
        return "pc";
      case DivergenceKind::UnmappedPc:
        return "unmapped-pc";
      case DivergenceKind::RegWriteback:
        return "register-writeback";
      case DivergenceKind::StoreAddr:
        return "store-address";
      case DivergenceKind::StoreData:
        return "store-data";
      case DivergenceKind::BranchDirection:
        return "branch-direction";
      case DivergenceKind::NextPc:
        return "next-pc";
    }
    return "unknown";
}

RetireChecker::RetireChecker(
    const isa::Program &program, Addr entry,
    const std::function<void(arch::MemoryImage &)> &init_mem, Config cfg)
    : program_(program), cfg_(cfg), refPc_(entry)
{
    SS_ASSERT(cfg_.historyDepth >= 1, "need at least one ring entry");
    if (init_mem)
        init_mem(mem_);
}

RetireChecker::RetireChecker(const isa::Program &program, Addr start_pc,
                             const arch::RegFile &regs,
                             arch::MemoryImage mem, Config cfg)
    : program_(program), cfg_(cfg), refPc_(start_pc), regs_(regs),
      mem_(std::move(mem))
{
    SS_ASSERT(cfg_.historyDepth >= 1, "need at least one ring entry");
}

void
RetireChecker::diverge(DivergenceKind kind, const RetireRecord &rec,
                       std::uint64_t expected, std::uint64_t actual)
{
    div_.kind = kind;
    div_.record = rec;
    div_.expected = expected;
    div_.actual = actual;
    if (cfg_.panicOnDivergence)
        SS_FATAL("architectural divergence at retirement\n", report());
}

void
RetireChecker::onRetire(const RetireRecord &observed)
{
    // First divergence latches: the reference no longer tracks the
    // core, so further comparisons would only produce noise.
    if (diverged() || refHalted_)
        return;

    RetireRecord rec = observed;
    rec.index = ++checked_;

    // Mutation hooks: corrupt the *observed* values, never the core,
    // so the injected-fault tests prove detection without perturbing
    // the simulation under test.
    if (rec.wroteReg && ++regWrites_ == cfg_.injectRegFaultAt)
        rec.value ^= 0x1;
    if (rec.isStore && ++stores_ == cfg_.injectStoreFaultAt)
        rec.storeData ^= 0x1;

    history_.push_back(rec);
    while (history_.size() > cfg_.historyDepth)
        history_.pop_front();

    if (rec.pc != refPc_) {
        diverge(DivergenceKind::Pc, rec, refPc_, rec.pc);
        return;
    }

    const isa::Instruction *si = program_.fetch(refPc_);
    if (!si) {
        diverge(DivergenceKind::UnmappedPc, rec, refPc_, rec.pc);
        return;
    }

    arch::ExecResult ref =
        arch::execute(*si, refPc_, regs_, mem_, /*allow_stores=*/true);

    if (ref.wroteReg != rec.wroteReg ||
        (ref.wroteReg && ref.value != rec.value)) {
        diverge(DivergenceKind::RegWriteback, rec, ref.value, rec.value);
        return;
    }
    if (si->isStore() && !ref.fault) {
        if (ref.memAddr != rec.storeAddr) {
            diverge(DivergenceKind::StoreAddr, rec, ref.memAddr,
                    rec.storeAddr);
            return;
        }
        if (ref.value != rec.storeData) {
            diverge(DivergenceKind::StoreData, rec, ref.value,
                    rec.storeData);
            return;
        }
    }
    if (si->isCondBranch() && ref.taken != rec.taken) {
        diverge(DivergenceKind::BranchDirection, rec, ref.taken,
                rec.taken);
        return;
    }
    if (ref.nextPc != rec.nextPc) {
        diverge(DivergenceKind::NextPc, rec, ref.nextPc, rec.nextPc);
        return;
    }

    refPc_ = ref.nextPc;
    refHalted_ = ref.halted;
}

std::string
RetireChecker::report() const
{
    if (!diverged())
        return "";

    std::ostringstream os;
    os << std::hex;
    const RetireRecord &r = div_.record;
    os << "first divergence: " << divergenceKindName(div_.kind)
       << " at retired instruction #" << std::dec << r.index
       << " (seq " << r.seq << ") pc 0x" << std::hex << r.pc << "\n";
    if (const isa::Instruction *si = program_.fetch(r.pc))
        os << "  insn: " << si->disassemble() << "\n";
    os << "  expected 0x" << div_.expected << ", core retired 0x"
       << div_.actual << "\n";
    os << "last " << std::dec << history_.size()
       << " retired instructions (oldest first):\n";
    for (const RetireRecord &h : history_) {
        os << "  #" << std::dec << h.index << " seq=" << h.seq
           << " pc=0x" << std::hex << h.pc;
        if (const isa::Instruction *si = program_.fetch(h.pc))
            os << "  " << si->disassemble();
        if (h.wroteReg)
            os << "  [r" << std::dec << unsigned{h.reg} << "=0x"
               << std::hex << h.value << "]";
        if (h.isStore)
            os << "  [*0x" << std::hex << h.storeAddr << "=0x"
               << h.storeData << "]";
        if (h.isCondBranch)
            os << "  [" << (h.taken ? "taken" : "not-taken") << "]";
        if (h.index == r.index)
            os << "  <== diverged";
        os << "\n";
    }
    return os.str();
}

} // namespace specslice::check
