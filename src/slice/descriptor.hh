/**
 * @file
 * The speculative-slice annotation set (Figure 5's "Annotations"): fork
 * point, slice entry PC, live-in registers, maximum loop iteration
 * count, the slice's prediction generating instructions (PGIs) with the
 * problem branches they feed, and the kill points used for prediction
 * correlation (Section 5.1's loop-iteration kills and slice kills).
 *
 * Slices are constructed by hand (as in the paper) in the workload
 * builders; this struct is what the hardware tables get loaded with.
 */

#ifndef SPECSLICE_SLICE_DESCRIPTOR_HH
#define SPECSLICE_SLICE_DESCRIPTOR_HH

#include <string>
#include <vector>

#include "common/types.hh"

namespace specslice::slice
{

/** One prediction generating instruction and its consumer branch. */
struct PgiSpec
{
    Addr sliceInstPc = invalidAddr;     ///< PGI inside the slice code
    Addr problemBranchPc = invalidAddr; ///< branch in the main thread

    /**
     * Direction convention: a non-zero PGI result predicts the problem
     * branch taken; set invert when the slice computes the complement
     * (e.g. the slice evaluates the loop-continue condition while the
     * problem branch is the loop-exit test).
     */
    bool invert = false;

    /**
     * Kill annotations for the branch-queue entry this PGI feeds
     * (Figure 10: loop PC kills the head prediction once per loop
     * iteration; kill PC kills all remaining predictions).
     */
    Addr loopKillPc = invalidAddr;
    Addr sliceKillPc = invalidAddr;
    /**
     * When the loop-kill block is the target of the loop back-edge,
     * its first instance precedes the first problem-branch instance
     * and must not kill ("the first instance of the block should not
     * kill any predictions", Section 5.1).
     */
    bool loopKillSkipFirst = false;
};

/** A complete hand-constructed speculative slice. */
struct SliceDescriptor
{
    std::string name;

    /** Existing main-thread instruction whose fetch forks the slice. */
    Addr forkPc = invalidAddr;

    /** First instruction of the slice code. */
    Addr slicePc = invalidAddr;

    /** Registers copied from the main thread at fork (typically <=4). */
    std::vector<RegIndex> liveIns;

    /**
     * Maximum loop iterations (profile-derived upper bound); 0 means
     * the slice contains no loop. Exceeding it terminates the slice
     * ("runaway slice" protection, Section 3.2).
     */
    unsigned maxLoopIters = 0;

    /** The slice's loop back-edge branch PC (iterations are counted
     *  as taken executions of this branch); invalidAddr if no loop. */
    Addr loopBackEdgePc = invalidAddr;

    /** Prediction generating instructions. */
    std::vector<PgiSpec> pgis;

    /**
     * Main-thread problem loads this slice prefetches (their PCs).
     * Used for the constrained limit study and covered-miss stats.
     */
    std::vector<Addr> coveredLoadPcs;

    /** Main-thread problem branches this slice predicts (their PCs). */
    std::vector<Addr> coveredBranchPcs;

    /** Slice loads that act as prefetches (for Table 3's pref count). */
    std::vector<Addr> prefetchLoadPcs;

    /** Static size of the slice in instructions (for Table 3). */
    unsigned staticSize = 0;

    /** Static instructions inside the slice loop (Table 3 parens). */
    unsigned staticSizeInLoop = 0;

    /** Distinct kill PCs used for correlation (Table 3's kills). */
    unsigned
    killCount() const
    {
        std::vector<Addr> seen;
        for (const PgiSpec &p : pgis) {
            for (Addr k : {p.loopKillPc, p.sliceKillPc}) {
                if (k == invalidAddr)
                    continue;
                bool dup = false;
                for (Addr s : seen)
                    dup = dup || s == k;
                if (!dup)
                    seen.push_back(k);
            }
        }
        return static_cast<unsigned>(seen.size());
    }
};

} // namespace specslice::slice

#endif // SPECSLICE_SLICE_DESCRIPTOR_HH
