#include "slice/validator.hh"

#include <array>
#include <sstream>

#include "isa/opcodes.hh"

namespace specslice::slice
{

namespace
{

using isa::Instruction;
using isa::instBytes;
using isa::Opcode;

void
error(SliceValidation &v, std::string msg)
{
    v.issues.push_back({SliceIssue::Severity::Error, std::move(msg)});
}

void
warning(SliceValidation &v, std::string msg)
{
    v.issues.push_back({SliceIssue::Severity::Warning, std::move(msg)});
}

std::string
hex(Addr a)
{
    std::ostringstream os;
    os << "0x" << std::hex << a;
    return os.str();
}

} // namespace

std::string
SliceValidation::summary() const
{
    std::ostringstream os;
    for (const SliceIssue &i : issues) {
        os << (i.severity == SliceIssue::Severity::Error ? "error: "
                                                         : "warning: ")
           << i.message << '\n';
    }
    return os.str();
}

SliceValidation
validateSlice(const SliceDescriptor &desc, const isa::Program &program)
{
    SliceValidation v;

    // ---- basic anchors ----
    if (desc.forkPc == invalidAddr) {
        error(v, "slice '" + desc.name + "' has no fork PC");
        return v;
    }
    if (!program.contains(desc.forkPc))
        error(v, "fork PC " + hex(desc.forkPc) +
                     " is not a program instruction");
    if (desc.slicePc == invalidAddr || !program.contains(desc.slicePc)) {
        error(v, "slice entry PC " + hex(desc.slicePc) + " unmapped");
        return v;
    }
    if (desc.staticSize == 0)
        error(v, "staticSize is zero");

    // ---- walk the slice body ----
    Addr slice_end = desc.slicePc + desc.staticSize * instBytes;
    bool saw_terminator = false;
    bool back_edge_in_slice = false;
    std::array<bool, isa::numRegs> written{};
    std::array<bool, isa::numRegs> live_in{};
    for (RegIndex r : desc.liveIns)
        live_in[r] = true;
    std::vector<RegIndex> undeclared;

    for (Addr pc = desc.slicePc; pc < slice_end; pc += instBytes) {
        const Instruction *si = program.fetch(pc);
        if (!si) {
            error(v, "slice body runs off mapped code at " + hex(pc));
            break;
        }
        const isa::OpTraits &t = si->traits();

        if (t.isStore)
            error(v, "slice contains a store at " + hex(pc) +
                         " (slices must not affect architected state)");
        if (t.isIndirect)
            error(v, "slice contains indirect control at " + hex(pc) +
                         " (unsupported in helper threads)");
        if (si->op == Opcode::Halt)
            error(v, "slice contains HALT at " + hex(pc));
        if (si->op == Opcode::SliceEnd)
            saw_terminator = true;

        // Live-in discipline: any register read before the slice
        // writes it must be declared (the fork copies only declared
        // registers; everything else starts as garbage).
        auto check_src = [&](RegIndex r) {
            if (r == isa::regZero || written[r] || live_in[r])
                return;
            bool known = false;
            for (RegIndex u : undeclared)
                known = known || u == r;
            if (!known)
                undeclared.push_back(r);
        };
        if (t.readsRa)
            check_src(si->ra);
        if (t.readsRb)
            check_src(si->rb);
        if (t.readsRc)
            check_src(si->rc);
        if (t.writesRc && si->rc != isa::regZero)
            written[si->rc] = true;

        if (si->hasStaticTarget() && si->target < pc) {
            if (pc == desc.loopBackEdgePc)
                back_edge_in_slice = true;
            if (si->target < desc.slicePc || si->target >= slice_end)
                error(v, "backward branch at " + hex(pc) +
                             " targets outside the slice");
        }
    }

    for (RegIndex r : undeclared)
        error(v, "register r" + std::to_string(unsigned(r)) +
                     " is read before written but not a live-in");
    for (RegIndex r : desc.liveIns) {
        if (r == isa::regZero)
            warning(v, "the zero register is declared live-in");
    }

    // ---- loop annotations ----
    bool has_loop_annotation = desc.maxLoopIters > 0 ||
                               desc.loopBackEdgePc != invalidAddr;
    if (has_loop_annotation) {
        if (desc.maxLoopIters == 0)
            error(v, "loop back-edge declared but maxLoopIters is 0 "
                     "(runaway slice)");
        if (desc.loopBackEdgePc == invalidAddr)
            error(v, "maxLoopIters set but no loop back-edge declared");
        else if (!back_edge_in_slice)
            error(v, "declared back-edge " + hex(desc.loopBackEdgePc) +
                         " is not a backward branch inside the slice");
    } else if (!saw_terminator) {
        warning(v, "loop-free slice without SliceEnd: it will run off "
                   "the end of its code");
    }

    // ---- PGIs and kill points ----
    for (const PgiSpec &p : desc.pgis) {
        const Instruction *pgi = program.fetch(p.sliceInstPc);
        if (!pgi || p.sliceInstPc < desc.slicePc ||
            p.sliceInstPc >= slice_end) {
            error(v, "PGI " + hex(p.sliceInstPc) +
                         " is not inside the slice body");
        } else if (!pgi->traits().writesRc) {
            error(v, "PGI " + hex(p.sliceInstPc) +
                         " computes no value");
        }

        const Instruction *br = program.fetch(p.problemBranchPc);
        if (!br)
            error(v, "problem branch " + hex(p.problemBranchPc) +
                         " unmapped");
        else if (!br->isCondBranch())
            error(v, "problem branch " + hex(p.problemBranchPc) +
                         " is not a conditional branch");

        if (p.sliceKillPc == invalidAddr)
            error(v, "PGI " + hex(p.sliceInstPc) +
                         " has no slice-kill PC (predictions would "
                         "never be deallocated)");
        else if (!program.contains(p.sliceKillPc))
            error(v, "slice-kill PC " + hex(p.sliceKillPc) +
                         " unmapped");

        if (p.loopKillPc != invalidAddr &&
            !program.contains(p.loopKillPc))
            error(v, "loop-kill PC " + hex(p.loopKillPc) + " unmapped");
        if (has_loop_annotation && p.loopKillPc == invalidAddr)
            warning(v, "loop slice PGI " + hex(p.sliceInstPc) +
                           " has no loop-iteration kill: only the "
                           "first prediction can ever be used");
        if (p.loopKillSkipFirst && p.loopKillPc == invalidAddr)
            error(v, "loopKillSkipFirst set without a loop-kill PC");
    }

    if (desc.pgis.empty() && desc.prefetchLoadPcs.empty())
        warning(v, "slice declares neither predictions nor prefetches");

    for (Addr pc : desc.prefetchLoadPcs) {
        const Instruction *si = program.fetch(pc);
        if (!si || !(pc >= desc.slicePc && pc < slice_end))
            error(v, "prefetch PC " + hex(pc) +
                         " is not inside the slice body");
        else if (!si->isLoad())
            error(v, "prefetch PC " + hex(pc) + " is not a load");
    }
    for (Addr pc : desc.coveredBranchPcs) {
        const Instruction *si = program.fetch(pc);
        if (!si || !si->isCondBranch())
            error(v, "covered branch " + hex(pc) +
                         " is not a conditional branch in the program");
    }
    for (Addr pc : desc.coveredLoadPcs) {
        const Instruction *si = program.fetch(pc);
        if (!si || !si->isLoad())
            error(v, "covered load " + hex(pc) +
                         " is not a load in the program");
    }

    return v;
}

} // namespace specslice::slice
