#include "slice/slice_table.hh"

#include "common/logging.hh"

namespace specslice::slice
{

unsigned
SliceTable::load(const SliceDescriptor &desc)
{
    SS_ASSERT(desc.forkPc != invalidAddr, "slice needs a fork PC");
    SS_ASSERT(desc.slicePc != invalidAddr, "slice needs an entry PC");
    if (slices_.size() >= limits_.sliceEntries)
        SS_FATAL("slice table capacity (", limits_.sliceEntries,
                 ") exceeded");
    if (pgiIndex_.size() + desc.pgis.size() > limits_.pgiEntries)
        SS_FATAL("PGI table capacity (", limits_.pgiEntries, ") exceeded");
    if (forkIndex_.count(desc.forkPc))
        SS_FATAL("two slices share fork PC 0x", std::hex, desc.forkPc);

    auto idx = static_cast<unsigned>(slices_.size());
    slices_.push_back(desc);
    forkIndex_.emplace(desc.forkPc, idx);

    for (const PgiSpec &p : slices_.back().pgis) {
        auto [it, inserted] = pgiIndex_.emplace(p.sliceInstPc, &p);
        if (!inserted)
            SS_FATAL("two PGIs at slice pc 0x", std::hex, p.sliceInstPc);
    }
    return idx;
}

const SliceDescriptor &
SliceTable::slice(unsigned idx) const
{
    SS_ASSERT(idx < slices_.size(), "bad slice index");
    return slices_[idx];
}

} // namespace specslice::slice
