#include "slice/correlator.hh"

#include <algorithm>

#include "common/logging.hh"
#include "obs/trace.hh"

namespace specslice::slice
{

PredictionCorrelator::Handles::Handles(StatGroup &g)
    : entriesEvictedLive(g.scalar("entries_evicted_live")),
      entriesAllocated(g.scalar("entries_allocated")),
      pgiFetchNoEntry(g.scalar("pgi_fetch_no_entry")),
      predictionsDroppedDead(g.scalar("predictions_dropped_dead")),
      predictionsDroppedFull(g.scalar("predictions_dropped_full")),
      killsAppliedFromDebt(g.scalar("kills_applied_from_debt")),
      predictionsAllocated(g.scalar("predictions_allocated")),
      predictionsGenerated(g.scalar("predictions_generated")),
      matchesFull(g.scalar("matches_full")),
      matchesLate(g.scalar("matches_late")),
      matchesConflict(g.scalar("matches_conflict")),
      killsLoop(g.scalar("kills_loop")),
      killsPending(g.scalar("kills_pending")),
      killsSlice(g.scalar("kills_slice")),
      entriesSquashed(g.scalar("entries_squashed")),
      killsRestored(g.scalar("kills_restored")),
      consumersSquashed(g.scalar("consumers_squashed")),
      slotsSliceSquashed(g.scalar("slots_slice_squashed")),
      slotsRetired(g.scalar("slots_retired"))
{
}

PredictionCorrelator::PredictionCorrelator(const Config &cfg)
    : cfg_(cfg), stats_("correlator"), s_(stats_)
{
}

void
PredictionCorrelator::indexEntry(const Entry &e)
{
    for (Addr pc : {e.branchPc, e.loopKillPc, e.sliceKillPc}) {
        if (pc == invalidAddr)
            continue;
        auto &ids = pcIndex_[pc];
        if (std::find(ids.begin(), ids.end(), e.id) == ids.end())
            ids.push_back(e.id);
    }
}

void
PredictionCorrelator::unindexEntry(const Entry &e)
{
    for (Addr pc : {e.branchPc, e.loopKillPc, e.sliceKillPc}) {
        if (pc == invalidAddr)
            continue;
        std::vector<std::uint64_t> *ids = pcIndex_.find(pc);
        if (!ids)
            continue;
        ids->erase(std::remove(ids->begin(), ids->end(), e.id),
                   ids->end());
        if (ids->empty())
            pcIndex_.erase(pc);
    }
}

void
PredictionCorrelator::emitSlotEvent(obs::EventKind kind, const Entry &e,
                                    const Slot &s, SeqNum seq)
{
    if (events_)
        events_->push(kind, e.thread, e.branchPc, seq, s.token);
}

void
PredictionCorrelator::emitSlotTerminal(const Entry &e, const Slot &s)
{
    emitSlotEvent(s.everMatched ? obs::EventKind::CorrPredUsed
                                : obs::EventKind::CorrPredKilled,
                  e, s, s.pgiSeq);
}

void
PredictionCorrelator::freeEntry(std::uint64_t id)
{
    Entry *e = entries_.find(id);
    if (!e)
        return;
    for (const Slot &s : e->slots) {
        emitSlotTerminal(*e, s);
        tokenIndex_.erase(s.token);
    }
    unindexEntry(*e);
    entries_.erase(id);
}

void
PredictionCorrelator::maybeEvictForCapacity()
{
    if (entries_.size() < cfg_.entries)
        return;
    // Prefer the oldest fully-drained entry; otherwise evict the oldest
    // entry outright (a real machine would simply lose correlation).
    std::uint64_t victim = 0;
    entries_.forEach([&](Entry &e) {
        if (!victim && e.sliceDone && e.slots.empty())
            victim = e.id;
    });
    if (victim) {
        freeEntry(victim);
        return;
    }
    ++s_.entriesEvictedLive;
    freeEntry(entries_.oldest()->id);
}

void
PredictionCorrelator::onFork(const SliceDescriptor &desc, ThreadId thread,
                             SeqNum fork_seq)
{
    // One branch-queue entry per distinct problem branch.
    for (const PgiSpec &p : desc.pgis) {
        if (findEntry(fork_seq, p.problemBranchPc))
            continue;  // a second PGI feeding the same branch
        maybeEvictForCapacity();
        Entry e;
        e.id = nextEntryId_++;
        e.branchPc = p.problemBranchPc;
        e.loopKillPc = p.loopKillPc;
        e.sliceKillPc = p.sliceKillPc;
        e.skipFirstLoopKill = p.loopKillSkipFirst;
        e.forkSeq = fork_seq;
        e.thread = thread;
        Entry &stored = entries_.push(std::move(e));
        indexEntry(stored);
        ++s_.entriesAllocated;
        if (events_)
            events_->push(obs::EventKind::CorrEntryCreate, thread,
                          stored.branchPc, fork_seq, stored.id);
        SS_DTRACE(Corr, "entry id=", stored.id, " branch=0x", std::hex,
                  stored.branchPc, std::dec, " fork=", fork_seq,
                  " thread=", unsigned{thread});
    }
}

PredictionCorrelator::Entry *
PredictionCorrelator::findEntry(SeqNum fork_seq, Addr branch_pc)
{
    const std::vector<std::uint64_t> *ids = pcIndex_.find(branch_pc);
    if (!ids)
        return nullptr;
    for (std::uint64_t id : *ids) {
        Entry *e = entries_.find(id);
        SS_ASSERT(e, "pc index references a freed entry");
        if (e->forkSeq == fork_seq && e->branchPc == branch_pc)
            return e;
    }
    return nullptr;
}

std::uint64_t
PredictionCorrelator::onPgiFetch(const PgiSpec &spec, SeqNum fork_seq,
                                 SeqNum pgi_seq)
{
    // corr.drop: lose this activation before any slot exists. The
    // consumer branch falls back to the traditional predictor, same
    // as a capacity drop.
    if (injector_ && injector_->fire(fault::Site::CorrDrop))
        return 0;
    Entry *e = findEntry(fork_seq, spec.problemBranchPc);
    if (!e) {
        ++s_.pgiFetchNoEntry;
        return 0;
    }
    if (e->deadSeq != invalidSeqNum) {
        // The main thread already left this slice's valid region.
        ++s_.predictionsDroppedDead;
        return 0;
    }
    if (e->overflowed || e->slots.size() >= cfg_.predsPerBranch) {
        e->overflowed = true;
        ++s_.predictionsDroppedFull;
        if (events_)
            events_->push(obs::EventKind::CorrOverflow, e->thread,
                          e->branchPc, pgi_seq, e->id);
        SS_DTRACE(Corr, "overflow entry=", e->id, " branch=0x",
                  std::hex, e->branchPc);
        return 0;
    }
    Slot s;
    s.token = nextToken_++;
    s.pgiSeq = pgi_seq;
    if (!e->pendingKills.empty()) {
        // A kill for this slot's branch instance already passed by:
        // the slice is behind. Apply it now so alignment holds.
        s.killed = true;
        s.killerSeq = e->pendingKills.front();
        e->pendingKills.pop_front();
        ++s_.killsAppliedFromDebt;
    }
    e->slots.push_back(s);
    tokenIndex_.insert(s.token, e->id);
    ++s_.predictionsAllocated;
    emitSlotEvent(obs::EventKind::CorrPredCreate, *e, s, pgi_seq);
    SS_DTRACE(Corr, "create tok=", s.token, " entry=", e->id,
              " pgi-seq=", pgi_seq,
              s.killed ? " (pre-killed from debt)" : "");
    return s.token;
}

PredictionCorrelator::Slot *
PredictionCorrelator::findSlot(std::uint64_t token, Entry **entry_out)
{
    const std::uint64_t *id = tokenIndex_.find(token);
    if (!id)
        return nullptr;
    Entry *e = entries_.find(*id);
    if (!e)
        return nullptr;
    for (Slot &s : e->slots) {
        if (s.token == token) {
            if (entry_out)
                *entry_out = e;
            return &s;
        }
    }
    return nullptr;
}

PredictionCorrelator::LateResult
PredictionCorrelator::onPgiExecute(std::uint64_t token, bool dir)
{
    LateResult res;
    Slot *s = findSlot(token, nullptr);
    if (!s)
        return res;  // slot evicted/squashed in the meantime
    s->computed = true;
    s->dir = dir;
    ++s_.predictionsGenerated;
    if (s->consumerSeq != invalidSeqNum) {
        res.hasConsumer = true;
        res.consumerSeq = s->consumerSeq;
        res.usedDir = s->consumerUsedDir;
        res.computedDir = dir;
    }
    return res;
}

PredictionCorrelator::MatchResult
PredictionCorrelator::onBranchFetch(Addr pc, SeqNum branch_seq,
                                    bool default_dir)
{
    MatchResult res;
    const std::vector<std::uint64_t> *ids = pcIndex_.find(pc);
    if (!ids)
        return res;

    // The pc's id list is in allocation (fork) order: the oldest
    // in-flight instance of the slice owns the branch first.
    for (std::uint64_t id : *ids) {
        Entry &e = *entries_.find(id);
        if (e.branchPc != pc)
            continue;  // pc is only a kill PC for this entry
        // Head = oldest prediction not yet killed.
        for (Slot &s : e.slots) {
            if (s.killed)
                continue;
            res.matched = true;
            res.token = s.token;
            if (s.computed) {
                res.overrideDir = s.dir ? 1 : 0;
                if (!s.everMatched)
                    emitSlotEvent(obs::EventKind::CorrPredBound, e, s,
                                  branch_seq);
                s.everMatched = true;
                ++s_.matchesFull;
                SS_DTRACE(Corr, "match-full tok=", s.token, " pc=0x",
                          std::hex, pc, std::dec,
                          " branch-seq=", branch_seq,
                          " dir=", int{s.dir});
            } else if (s.consumerSeq == invalidSeqNum) {
                // Late prediction: bind this branch instance; the
                // traditional predictor supplies the direction.
                s.consumerSeq = branch_seq;
                s.consumerUsedDir = default_dir;
                if (!s.everMatched)
                    emitSlotEvent(obs::EventKind::CorrPredBound, e, s,
                                  branch_seq);
                s.everMatched = true;
                ++s_.matchesLate;
                SS_DTRACE(Corr, "match-late tok=", s.token, " pc=0x",
                          std::hex, pc, std::dec,
                          " branch-seq=", branch_seq);
            } else {
                // Head already has a consumer bound and hasn't been
                // killed yet: no help for this instance.
                res.matched = false;
                res.token = 0;
                ++s_.matchesConflict;
            }
            return res;
        }
        // All predictions of the matching entry are killed; fall
        // through to a younger entry for the same branch, if any.
    }
    return res;
}

void
PredictionCorrelator::onKillFetch(Addr pc, SeqNum kill_seq)
{
    const std::vector<std::uint64_t> *found = pcIndex_.find(pc);
    if (!found)
        return;
    // Copy: kills never add/remove entries.
    std::vector<std::uint64_t> ids = *found;
    for (std::uint64_t id : ids) {
        Entry *ep = entries_.find(id);
        if (!ep)
            continue;
        Entry &e = *ep;
        if (e.loopKillPc == pc) {
            if (e.skipFirstLoopKill &&
                e.firstLoopKillSeq == invalidSeqNum) {
                e.firstLoopKillSeq = kill_seq;
            } else {
                bool applied = false;
                for (Slot &s : e.slots) {
                    if (!s.killed) {
                        s.killed = true;
                        s.killerSeq = kill_seq;
                        ++s_.killsLoop;
                        applied = true;
                        SS_DTRACE(Corr, "kill-loop tok=", s.token,
                                  " killer-seq=", kill_seq);
                        break;
                    }
                }
                if (!applied) {
                    // No slot yet: remember the kill as debt so the
                    // next allocation stays aligned.
                    e.pendingKills.push_back(kill_seq);
                    ++s_.killsPending;
                }
            }
        }
        if (e.sliceKillPc == pc) {
            for (Slot &s : e.slots) {
                if (!s.killed) {
                    s.killed = true;
                    s.killerSeq = kill_seq;
                    ++s_.killsSlice;
                    SS_DTRACE(Corr, "kill-slice tok=", s.token,
                              " killer-seq=", kill_seq);
                }
            }
            if (e.deadSeq == invalidSeqNum)
                e.deadSeq = kill_seq;
        }
    }
}

void
PredictionCorrelator::squashMain(SeqNum squash_seq)
{
    std::vector<std::uint64_t> to_free;
    entries_.forEach([&](Entry &e) {
        if (e.forkSeq > squash_seq) {
            // The fork point itself was squashed.
            to_free.push_back(e.id);
            ++s_.entriesSquashed;
            return;
        }
        if (e.firstLoopKillSeq != invalidSeqNum &&
            e.firstLoopKillSeq > squash_seq)
            e.firstLoopKillSeq = invalidSeqNum;
        if (e.deadSeq != invalidSeqNum && e.deadSeq > squash_seq)
            e.deadSeq = invalidSeqNum;
        while (!e.pendingKills.empty() &&
               e.pendingKills.back() > squash_seq)
            e.pendingKills.pop_back();
        for (Slot &s : e.slots) {
            if (s.killed && s.killerSeq > squash_seq) {
                s.killed = false;
                s.killerSeq = invalidSeqNum;
                ++s_.killsRestored;
            }
            if (s.consumerSeq != invalidSeqNum &&
                s.consumerSeq > squash_seq) {
                s.consumerSeq = invalidSeqNum;
                ++s_.consumersSquashed;
            }
        }
    });
    for (std::uint64_t id : to_free)
        freeEntry(id);
}

void
PredictionCorrelator::squashSlice(SeqNum fork_seq, SeqNum younger_than)
{
    entries_.forEach([&](Entry &e) {
        if (e.forkSeq != fork_seq)
            return;
        while (!e.slots.empty() && e.slots.back().pgiSeq > younger_than &&
               !e.slots.back().computed &&
               e.slots.back().consumerSeq == invalidSeqNum &&
               !e.slots.back().killed) {
            emitSlotTerminal(e, e.slots.back());
            tokenIndex_.erase(e.slots.back().token);
            e.slots.pop_back();
            ++s_.slotsSliceSquashed;
        }
    });
}

bool
PredictionCorrelator::allEntriesDead(SeqNum fork_seq,
                                     SeqNum retired_bound) const
{
    bool any = false;
    bool all_dead = true;
    entries_.forEach([&](const Entry &e) {
        if (e.forkSeq != fork_seq)
            return;
        any = true;
        if (e.deadSeq == invalidSeqNum || e.deadSeq > retired_bound)
            all_dead = false;
    });
    return any && all_dead;
}

unsigned
PredictionCorrelator::consumedCount(SeqNum fork_seq) const
{
    unsigned n = 0;
    entries_.forEach([&](const Entry &e) {
        if (e.forkSeq != fork_seq)
            return;
        for (const Slot &s : e.slots)
            n += s.everMatched ||
                 s.consumerSeq != invalidSeqNum;
    });
    return n;
}

void
PredictionCorrelator::onSliceDone(SeqNum fork_seq)
{
    entries_.forEach([&](Entry &e) {
        if (e.forkSeq == fork_seq)
            e.sliceDone = true;
    });
}

void
PredictionCorrelator::retireUpTo(SeqNum bound)
{
    std::vector<std::uint64_t> to_free;
    entries_.forEach([&](Entry &e) {
        while (!e.slots.empty()) {
            Slot &s = e.slots.front();
            if (s.killed && s.killerSeq <= bound) {
                emitSlotTerminal(e, s);
                tokenIndex_.erase(s.token);
                e.slots.pop_front();
                ++s_.slotsRetired;
            } else {
                break;
            }
        }
        bool dead_retired =
            e.deadSeq != invalidSeqNum && e.deadSeq <= bound;
        if ((e.sliceDone || dead_retired) && e.slots.empty() &&
            e.forkSeq <= bound)
            to_free.push_back(e.id);
    });
    for (std::uint64_t id : to_free)
        freeEntry(id);
}

void
PredictionCorrelator::drainEvents()
{
    if (!events_)
        return;
    entries_.forEach([&](const Entry &e) {
        for (const Slot &s : e.slots)
            emitSlotTerminal(e, s);
    });
}

} // namespace specslice::slice
