/**
 * @file
 * The slice table and PGI table of Figure 6. Both live at the front end
 * of the pipeline. The slice table's fork-PC field is a CAM compared
 * against the PCs fetched each cycle; the PGI table identifies which
 * slice instructions generate predictions and which problem branch each
 * prediction is for. Together they hold less than 512B of state
 * (16 slice entries, 64 PGI entries).
 */

#ifndef SPECSLICE_SLICE_SLICE_TABLE_HH
#define SPECSLICE_SLICE_SLICE_TABLE_HH

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "common/types.hh"
#include "slice/descriptor.hh"

namespace specslice::slice
{

class SliceTable
{
  public:
    struct Limits
    {
        unsigned sliceEntries = 16;
        unsigned pgiEntries = 64;
    };

    SliceTable() : SliceTable(Limits{}) {}
    explicit SliceTable(const Limits &limits) : limits_(limits) {}

    /**
     * Load a slice's entries (slice table + PGI table). Fatal if the
     * hardware capacity would be exceeded.
     * @return the slice's index.
     */
    unsigned load(const SliceDescriptor &desc);

    /** @return slice index forked by fetching pc, or -1. */
    int
    forkAt(Addr pc) const
    {
        auto it = forkIndex_.find(pc);
        return it == forkIndex_.end() ? -1 : static_cast<int>(it->second);
    }

    /** @return PGI spec for a slice-code pc, or nullptr. */
    const PgiSpec *
    pgiAt(Addr pc) const
    {
        auto it = pgiIndex_.find(pc);
        return it == pgiIndex_.end() ? nullptr : it->second;
    }

    const SliceDescriptor &slice(unsigned idx) const;
    std::size_t numSlices() const { return slices_.size(); }

    /** Total PGI entries loaded (hardware budget check). */
    std::size_t numPgis() const { return pgiIndex_.size(); }

  private:
    Limits limits_;
    /// deque: PGI-spec pointers handed out must stay valid across loads
    std::deque<SliceDescriptor> slices_;
    std::unordered_map<Addr, unsigned> forkIndex_;
    std::unordered_map<Addr, const PgiSpec *> pgiIndex_;
};

} // namespace specslice::slice

#endif // SPECSLICE_SLICE_SLICE_TABLE_HH
