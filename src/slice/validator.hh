/**
 * @file
 * Static validation of hand-constructed speculative slices against the
 * paper's construction rules (Sections 3-5). Slice authoring is
 * error-prone (it is assembly plus five kinds of annotations), so the
 * validator catches the mistakes that would otherwise show up as
 * silent mis-correlation:
 *
 *  - the slice code exists, is store-free and uses no indirect control;
 *  - every PGI lies inside the slice and writes a value;
 *  - every problem branch is a conditional branch in the main program;
 *  - kill PCs exist in the main program;
 *  - declared live-ins are read before being overwritten, and no other
 *    register is consumed uninitialized;
 *  - a slice with a loop declares a back-edge inside the slice and a
 *    positive iteration limit.
 */

#ifndef SPECSLICE_SLICE_VALIDATOR_HH
#define SPECSLICE_SLICE_VALIDATOR_HH

#include <string>
#include <vector>

#include "isa/program.hh"
#include "slice/descriptor.hh"

namespace specslice::slice
{

/** One validation finding. */
struct SliceIssue
{
    enum class Severity
    {
        Error,    ///< the slice will malfunction
        Warning,  ///< suspicious; probably a mistake
    };

    Severity severity = Severity::Error;
    std::string message;
};

/** Result of validating one descriptor. */
struct SliceValidation
{
    std::vector<SliceIssue> issues;

    bool
    ok() const
    {
        for (const SliceIssue &i : issues)
            if (i.severity == SliceIssue::Severity::Error)
                return false;
        return true;
    }

    std::size_t
    errorCount() const
    {
        std::size_t n = 0;
        for (const SliceIssue &i : issues)
            n += (i.severity == SliceIssue::Severity::Error);
        return n;
    }

    /** All messages joined, one per line (for error reporting). */
    std::string summary() const;
};

/** Validate desc against the program it will run in. */
SliceValidation validateSlice(const SliceDescriptor &desc,
                              const isa::Program &program);

} // namespace specslice::slice

#endif // SPECSLICE_SLICE_VALIDATOR_HH
