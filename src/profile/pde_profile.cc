#include "profile/pde_profile.hh"

namespace specslice::profile
{

ProblemInstructions
classifyProblemInstructions(const core::PcProfile &profile,
                            const ClassifyThresholds &th)
{
    ProblemInstructions out;

    for (const auto &[pc, c] : profile.perPc) {
        std::uint64_t mem_exec = c.loadExec + c.storeExec;
        std::uint64_t mem_miss = c.loadMiss + c.storeMiss;
        out.memOps += mem_exec;
        out.l1Misses += mem_miss;
        out.branches += c.branchExec;
        out.mispredictions += c.branchMispred;

        if (mem_exec > 0 && mem_miss >= th.minPdeCount &&
            static_cast<double>(mem_miss) >=
                th.minPdeRate * static_cast<double>(mem_exec)) {
            out.problemLoads.insert(pc);
            out.memOpsAtProblem += mem_exec;
            out.l1MissesAtProblem += mem_miss;
        }

        if (c.branchExec > 0 && c.branchMispred >= th.minPdeCount &&
            static_cast<double>(c.branchMispred) >=
                th.minPdeRate * static_cast<double>(c.branchExec)) {
            out.problemBranches.insert(pc);
            out.branchesAtProblem += c.branchExec;
            out.mispredictionsAtProblem += c.branchMispred;
        }
    }
    return out;
}

} // namespace specslice::profile
