/**
 * @file
 * Problem-instruction classification (Section 2.2): attribute
 * performance degrading events (cache misses, branch mispredictions)
 * to static instructions and mark those responsible for a non-trivial
 * number of PDEs with a PDE rate of at least 10 % of their executions.
 */

#ifndef SPECSLICE_PROFILE_PDE_PROFILE_HH
#define SPECSLICE_PROFILE_PDE_PROFILE_HH

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "common/types.hh"
#include "core/smt_core.hh"

namespace specslice::profile
{

/** Classification thresholds (the paper calls them "somewhat
 *  arbitrary"; they only demonstrate the uneven PDE distribution). */
struct ClassifyThresholds
{
    double minPdeRate = 0.10;        ///< >=10 % of executions are PDEs
    std::uint64_t minPdeCount = 50;  ///< non-trivial absolute count
};

/** Table 2's per-benchmark summary. */
struct ProblemInstructions
{
    std::unordered_set<Addr> problemLoads;    ///< loads and stores
    std::unordered_set<Addr> problemBranches;

    // Memory-side coverage.
    std::uint64_t memOps = 0;
    std::uint64_t memOpsAtProblem = 0;
    std::uint64_t l1Misses = 0;
    std::uint64_t l1MissesAtProblem = 0;

    // Control-side coverage.
    std::uint64_t branches = 0;
    std::uint64_t branchesAtProblem = 0;
    std::uint64_t mispredictions = 0;
    std::uint64_t mispredictionsAtProblem = 0;

    double
    memOpFraction() const
    {
        return memOps ? static_cast<double>(memOpsAtProblem) / memOps
                      : 0.0;
    }
    double
    missCoverage() const
    {
        return l1Misses
                   ? static_cast<double>(l1MissesAtProblem) / l1Misses
                   : 0.0;
    }
    double
    branchFraction() const
    {
        return branches
                   ? static_cast<double>(branchesAtProblem) / branches
                   : 0.0;
    }
    double
    mispredCoverage() const
    {
        return mispredictions
                   ? static_cast<double>(mispredictionsAtProblem) /
                         mispredictions
                   : 0.0;
    }
};

/** Classify problem instructions in a per-PC profile. */
ProblemInstructions
classifyProblemInstructions(const core::PcProfile &profile,
                            const ClassifyThresholds &thresholds = {});

} // namespace specslice::profile

#endif // SPECSLICE_PROFILE_PDE_PROFILE_HH
