#include "autoslice/analyzer.hh"

#include <algorithm>
#include <deque>
#include <sstream>

#include "arch/tracer.hh"
#include "common/logging.hh"

namespace specslice::autoslice
{

namespace
{

using isa::Instruction;
using isa::Opcode;

/** Compact per-instruction trace record kept in the window. */
struct Rec
{
    Addr pc;
    const Instruction *inst;
    Addr memAddr;       ///< effective address (mem ops)
    unsigned memSize;   ///< access bytes (mem ops)
    bool wroteReg;
};

unsigned
accessSize(Opcode op)
{
    switch (op) {
      case Opcode::Ldq:
      case Opcode::Stq:
      case Opcode::Prefetch:
        return 8;
      case Opcode::Ldl:
      case Opcode::Stl:
        return 4;
      case Opcode::Ldbu:
      case Opcode::Stb:
        return 1;
      default:
        return 0;
    }
}

/** Source registers of an instruction (excluding the zero reg). */
void
sources(const Instruction &inst, std::vector<RegIndex> &out)
{
    out.clear();
    const isa::OpTraits &t = inst.traits();
    if (t.readsRa && inst.ra != isa::regZero)
        out.push_back(inst.ra);
    if (t.readsRb && inst.rb != isa::regZero)
        out.push_back(inst.rb);
    if (t.readsRc && inst.rc != isa::regZero)
        out.push_back(inst.rc);
}

/** The candidate hoist distances reported per analysis. */
constexpr unsigned candidateDistances[] = {8, 16, 32, 64, 128, 256};

/** Per-instance backward-walk result. */
struct InstanceSlice
{
    unsigned sliceLength = 0;       ///< included dynamic instructions
    unsigned windowLength = 0;
    unsigned dataflowHeight = 0;
    std::vector<Addr> slicePcs;     ///< included PCs (forward order)
    /** Per candidate distance: (fork pc, live-in set, slice length
     *  within that distance). */
    struct AtDistance
    {
        Addr forkPc = invalidAddr;
        std::set<RegIndex> liveIns;
        unsigned sliceLength = 0;
    };
    std::map<unsigned, AtDistance> at;
};

InstanceSlice
walkBackward(const std::deque<Rec> &window, bool follow_memory)
{
    // window.back() is the problem instruction instance itself.
    InstanceSlice out;
    SS_ASSERT(!window.empty(), "empty window");
    out.windowLength = static_cast<unsigned>(window.size()) - 1;

    std::array<bool, isa::numRegs> needed{};
    std::vector<RegIndex> srcs;
    sources(*window.back().inst, srcs);
    for (RegIndex r : srcs)
        needed[r] = true;
    // The problem instruction's own load address feeds it too.
    std::set<std::pair<Addr, unsigned>> needed_mem;
    if (follow_memory && window.back().inst->isLoad() &&
        window.back().memAddr != invalidAddr)
        needed_mem.insert({window.back().memAddr,
                           window.back().memSize});

    std::vector<std::size_t> included;  // indices into window
    auto snapshot = [&](unsigned distance) {
        InstanceSlice::AtDistance at;
        std::size_t idx_from_end = distance + 1;  // +1: skip instance
        if (idx_from_end > window.size())
            return;  // window too short for this distance
        at.forkPc = window[window.size() - idx_from_end].pc;
        for (unsigned r = 0; r < isa::numRegs; ++r)
            if (needed[r])
                at.liveIns.insert(static_cast<RegIndex>(r));
        at.sliceLength = static_cast<unsigned>(included.size());
        out.at.emplace(distance, std::move(at));
    };

    unsigned next_candidate = 0;
    for (std::size_t back = 1; back < window.size(); ++back) {
        // Snapshot live-ins when crossing each candidate distance.
        while (next_candidate < std::size(candidateDistances) &&
               back > candidateDistances[next_candidate]) {
            snapshot(candidateDistances[next_candidate]);
            ++next_candidate;
        }

        const Rec &r = window[window.size() - 1 - back];
        bool include = false;
        if (r.wroteReg && needed[r.inst->rc])
            include = true;
        if (!include && follow_memory && r.inst->isStore() &&
            needed_mem.count({r.memAddr, r.memSize}))
            include = true;
        if (!include)
            continue;

        included.push_back(window.size() - 1 - back);
        if (r.wroteReg)
            needed[r.inst->rc] = false;
        if (r.inst->isStore())
            needed_mem.erase({r.memAddr, r.memSize});
        sources(*r.inst, srcs);
        for (RegIndex s : srcs)
            needed[s] = true;
        if (follow_memory && r.inst->isLoad() &&
            r.memAddr != invalidAddr)
            needed_mem.insert({r.memAddr, r.memSize});
    }
    while (next_candidate < std::size(candidateDistances)) {
        snapshot(candidateDistances[next_candidate]);
        ++next_candidate;
    }

    out.sliceLength = static_cast<unsigned>(included.size());
    std::sort(included.begin(), included.end());
    for (std::size_t idx : included)
        out.slicePcs.push_back(window[idx].pc);

    // Dataflow height: longest register-dependence chain through the
    // included instructions (forward pass).
    std::array<unsigned, isa::numRegs> height{};
    unsigned final_height = 0;
    auto step = [&](const Rec &r) {
        unsigned h = 0;
        sources(*r.inst, srcs);
        for (RegIndex s : srcs)
            h = std::max(h, height[s]);
        ++h;
        if (r.wroteReg)
            height[r.inst->rc] = h;
        return h;
    };
    for (std::size_t idx : included)
        step(window[idx]);
    final_height = step(window.back());
    out.dataflowHeight = final_height;

    // Snapshots' slice lengths were counted from the *youngest* end
    // during the walk, which is what we want: the dynamic slice
    // between a fork at that distance and the problem instruction.
    return out;
}

} // namespace

SliceAnalysis
analyzeProblemInstruction(const isa::Program &program, Addr entry_pc,
                          arch::MemoryImage &mem, Addr problem_pc,
                          const AnalyzerOptions &opts)
{
    SliceAnalysis out;
    out.problemPc = problem_pc;

    std::deque<Rec> window;
    struct DistanceAgg
    {
        std::map<Addr, unsigned> forkPcVotes;
        std::set<RegIndex> liveIns;
        std::uint64_t sliceLenSum = 0;
        unsigned samples = 0;
    };
    std::map<unsigned, DistanceAgg> agg;
    std::uint64_t slice_len_sum = 0, height_sum = 0, window_sum = 0;

    arch::TraceResult traced =
        arch::trace(program, entry_pc, mem, opts.traceInsts,
                    [&](const arch::TraceEvent &ev) {
        Rec r;
        r.pc = ev.pc;
        r.inst = ev.inst;
        r.memAddr = ev.result.memAddr;
        r.memSize = accessSize(ev.inst->op);
        r.wroteReg = ev.inst->traits().writesRc &&
                     ev.inst->rc != isa::regZero;
        window.push_back(r);
        if (window.size() > opts.windowInsts + 1)
            window.pop_front();

        if (ev.pc != problem_pc ||
            out.instancesAnalyzed >= opts.maxInstances ||
            window.size() < 16)
            return;

        InstanceSlice is = walkBackward(window, opts.followMemory);
        ++out.instancesAnalyzed;
        slice_len_sum += is.sliceLength;
        height_sum += is.dataflowHeight;
        window_sum += is.windowLength;
        for (Addr pc : is.slicePcs)
            out.staticSlice.insert(pc);
        for (const auto &[dist, at] : is.at) {
            DistanceAgg &d = agg[dist];
            ++d.forkPcVotes[at.forkPc];
            d.liveIns.insert(at.liveIns.begin(), at.liveIns.end());
            d.sliceLenSum += at.sliceLength;
            ++d.samples;
        }
    });
    out.traceInsts = traced.count;
    out.traceStop = traced.reason;
    // Halting early is normal (short programs); dying early is not —
    // the candidates below would be computed from a truncated trace.
    if (traced.reason == arch::TraceStop::Fault ||
        traced.reason == arch::TraceStop::UnmappedPc)
        SS_WARN("slice analysis trace of pc 0x", std::hex, problem_pc,
                std::dec, " ended abnormally (",
                arch::traceStopName(traced.reason), " after ",
                traced.count, " insts at pc 0x", std::hex,
                traced.finalPc, std::dec, ")");

    if (out.instancesAnalyzed == 0)
        return out;

    double n = static_cast<double>(out.instancesAnalyzed);
    out.avgDynamicSliceLength = static_cast<double>(slice_len_sum) / n;
    out.avgDataflowHeight = static_cast<double>(height_sum) / n;
    out.avgWindowLength = static_cast<double>(window_sum) / n;

    for (const auto &[dist, d] : agg) {
        ForkCandidate fc;
        fc.hoistDistance = dist;
        unsigned best = 0;
        for (const auto &[pc, votes] : d.forkPcVotes) {
            if (votes > best) {
                best = votes;
                fc.forkPc = pc;
            }
        }
        fc.instancesAgreeing = best;
        fc.avgDynamicSliceLength =
            d.samples ? static_cast<double>(d.sliceLenSum) / d.samples
                      : 0.0;
        fc.liveIns = d.liveIns;
        out.forkCandidates.push_back(fc);
    }
    return out;
}

std::string
SliceAnalysis::report(const isa::Program &program) const
{
    std::ostringstream os;
    os << "problem instruction 0x" << std::hex << problemPc << std::dec;
    if (const isa::Instruction *si = program.fetch(problemPc))
        os << "  (" << si->disassemble() << ")";
    os << "\n  instances analyzed: " << instancesAnalyzed << '\n';
    if (instancesAnalyzed == 0)
        return os.str();

    os << "  dynamic slice: " << avgDynamicSliceLength
       << " of " << avgWindowLength << " window instructions ("
       << static_cast<int>(sliceDensity() * 100 + 0.5) << "%)\n";
    os << "  dataflow height: " << avgDataflowHeight << '\n';
    os << "  static slice (" << staticSlice.size() << " PCs):\n";
    for (Addr pc : staticSlice) {
        os << "    0x" << std::hex << pc << std::dec;
        if (const isa::Instruction *si = program.fetch(pc))
            os << "  " << si->disassemble();
        os << '\n';
    }
    os << "  fork candidates (Section 3.2 'sweet spots'):\n";
    for (const ForkCandidate &fc : forkCandidates) {
        os << "    distance " << fc.hoistDistance << ": fork @ 0x"
           << std::hex << fc.forkPc << std::dec << " ("
           << fc.instancesAgreeing << "/" << instancesAnalyzed
           << " agree), slice len " << fc.avgDynamicSliceLength
           << ", live-ins {";
        bool first = true;
        for (RegIndex r : fc.liveIns) {
            os << (first ? "" : " ") << 'r' << unsigned(r);
            first = false;
        }
        os << "}\n";
    }
    return os.str();
}

} // namespace specslice::autoslice
