/**
 * @file
 * Automatic slice-candidate analysis (the Section 3.3 direction,
 * following Roth & Sohi's trace-based slice selection): given a
 * problem instruction, walk backward through an execution trace to
 * find the instructions its outcome actually depends on, then report
 * — per candidate fork distance — the numbers a slice constructor
 * needs: static/dynamic slice size, live-in registers, and the
 * fetch-constrained dataflow height (the "approximate benefit metric"
 * the paper cites).
 *
 * This is an *analysis*, not a code generator: slice optimization
 * ("automated slice optimization is important future work", end of
 * Section 3.3) and emission remain manual, but the analyzer rediscovers
 * the shapes of the paper's hand slices — see
 * examples/slice_candidates.
 */

#ifndef SPECSLICE_AUTOSLICE_ANALYZER_HH
#define SPECSLICE_AUTOSLICE_ANALYZER_HH

#include <map>
#include <set>
#include <string>
#include <vector>

#include "arch/memimg.hh"
#include "arch/tracer.hh"
#include "common/types.hh"
#include "isa/program.hh"

namespace specslice::autoslice
{

struct AnalyzerOptions
{
    /** Functional instructions to trace. */
    std::uint64_t traceInsts = 400'000;
    /** Max dynamic instructions walked backward per instance. */
    unsigned windowInsts = 256;
    /** Dynamic instances of the problem PC to analyze (sampled). */
    unsigned maxInstances = 256;
    /** Follow memory dependences (store -> load) inside the window. */
    bool followMemory = true;
};

/** Slice statistics at one candidate fork distance. */
struct ForkCandidate
{
    /** Dynamic instructions between fork point and the problem
     *  instruction (the latency-tolerance lever of Section 3.2). */
    unsigned hoistDistance = 0;
    /** The static PC at this distance (a fork point must be a fixed
     *  instruction); invalidAddr if instances disagree. */
    Addr forkPc = invalidAddr;
    /** How many analyzed instances shared that PC. */
    unsigned instancesAgreeing = 0;
    /** Mean dynamic slice length from fork to problem instruction. */
    double avgDynamicSliceLength = 0;
    /** Registers the slice would need copied at fork (union). */
    std::set<RegIndex> liveIns;
};

/** Full analysis of one problem instruction. */
struct SliceAnalysis
{
    Addr problemPc = invalidAddr;
    unsigned instancesAnalyzed = 0;

    /** Dynamic instructions the functional trace covered. */
    std::uint64_t traceInsts = 0;
    /** Why the trace ended. A Fault/UnmappedPc stop means the program
     *  died before the requested budget and the analysis below covers
     *  a truncated trace. */
    arch::TraceStop traceStop = arch::TraceStop::MaxInsts;

    /** Static PCs that appeared in any instance's backward slice. */
    std::set<Addr> staticSlice;
    /** Mean dynamic slice length over the full window. */
    double avgDynamicSliceLength = 0;
    /** Mean dataflow height (longest dependence chain, in
     *  instructions) — the fetch-constrained benefit metric. */
    double avgDataflowHeight = 0;
    /** Mean window instructions (slice density denominator). */
    double avgWindowLength = 0;

    /** Candidates at exponentially spaced hoist distances. */
    std::vector<ForkCandidate> forkCandidates;

    /** Dynamic slice instructions / window instructions: how much of
     *  the program the slice skips (smaller = better). */
    double
    sliceDensity() const
    {
        return avgWindowLength > 0
                   ? avgDynamicSliceLength / avgWindowLength
                   : 0.0;
    }

    /** Human-readable report. */
    std::string report(const isa::Program &program) const;
};

/**
 * Analyze the backward slices of problem_pc over a functional trace of
 * the program. The memory image is consumed (re-initialize per call).
 */
SliceAnalysis analyzeProblemInstruction(const isa::Program &program,
                                        Addr entry_pc,
                                        arch::MemoryImage &mem,
                                        Addr problem_pc,
                                        const AnalyzerOptions &opts = {});

} // namespace specslice::autoslice

#endif // SPECSLICE_AUTOSLICE_ANALYZER_HH
