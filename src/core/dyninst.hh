/**
 * @file
 * A dynamic (in-flight) instruction. The functional outcome is computed
 * at fetch for correct-path instructions (execute-at-fetch model); the
 * timing fields decide when that outcome becomes architecturally and
 * microarchitecturally visible.
 */

#ifndef SPECSLICE_CORE_DYNINST_HH
#define SPECSLICE_CORE_DYNINST_HH

#include <memory>
#include <vector>

#include "arch/exec.hh"
#include "arch/regfile.hh"
#include "branch/predictor_unit.hh"
#include "common/types.hh"
#include "isa/instruction.hh"

namespace specslice::core
{

struct DynInst
{
    SeqNum seq = invalidSeqNum;     ///< Von Neumann number
    ThreadId thread = invalidThread;
    Addr pc = invalidAddr;
    const isa::Instruction *si = nullptr;  ///< null for unmapped wrong path

    bool wrongPath = false;
    bool sliceThread = false;

    // Timing.
    Cycle fetchCycle = 0;
    Cycle eligibleAt = 0;   ///< earliest issue cycle (front-end depth)
    bool issued = false;
    bool completed = false;
    Cycle completeAt = 0;

    // Dependence tracking (timing only; values are functional).
    unsigned pendingSrcs = 0;
    std::vector<SeqNum> dependents;
    /** lastWriter value displaced by this inst (squash rollback). */
    SeqNum prevWriter = invalidSeqNum;
    bool setsLastWriter = false;

    // Functional outcome (valid when !wrongPath).
    arch::ExecResult fx;

    // Branch bookkeeping.
    bool isBranch = false;
    bool predictedTaken = false;
    Addr predictedTarget = invalidAddr; ///< PC fetch followed after this
    bool mispredictPending = false;     ///< followed path != actual path
    branch::SpecCheckpoint bpCheckpoint;
    branch::PredictContext bpCtx;
    bool usedCorrelator = false;        ///< direction overridden by slice
    std::uint64_t correlatorToken = 0;

    /** Register state just after this branch (late-binding reversal). */
    std::unique_ptr<arch::RegFile> regCheckpointAfter;

    // Slice bookkeeping.
    std::uint64_t pgiToken = 0;     ///< this is a PGI (slice thread)
    bool pgiInvert = false;
    ThreadId forkedThread = invalidThread;  ///< fork point: thread forked
};

} // namespace specslice::core

#endif // SPECSLICE_CORE_DYNINST_HH
