/**
 * @file
 * Fetch stage of the SMT core: ICOUNT-biased thread selection, branch
 * prediction with correlator override, slice forking at fork PCs, PGI
 * slot allocation, kill-PC notification, wrong-path walking, and
 * functional execute-at-fetch for correct-path instructions.
 */

#include <memory>

#include "core/smt_core.hh"

#include "common/logging.hh"
#include "obs/trace.hh"

namespace specslice::core
{

namespace
{

/** Effectively-infinite stall (cleared by the next redirect). */
constexpr Cycle stallForever = ~Cycle{0} / 2;

} // namespace

ThreadId
SmtCore::pickFetchThread(bool slices_only) const
{
    ThreadId best = invalidThread;
    long best_score = 0;
    for (ThreadId tid = slices_only ? 1 : 0; tid < threads_.size();
         ++tid) {
        const ThreadCtx &t = threads_[tid];
        if (!t.active || t.fetchEnded || t.fetchStallUntil > cycle_)
            continue;
        long score = static_cast<long>(t.icount);
        if (tid == 0)
            score -= cfg_.mainThreadFetchBias;
        if (best == invalidThread || score < best_score) {
            best = tid;
            best_score = score;
        }
    }
    return best;
}

unsigned &
SmtCore::windowCounterFor(bool slice_thread)
{
    return (slice_thread && cfg_.dedicatedSliceResources)
               ? sliceWindowOccupancy_
               : windowOccupancy_;
}

void
SmtCore::fetchFrom(ThreadId tid)
{
    ThreadCtx &t = threads_[tid];
    unsigned fetched = 0;
    while (fetched < cfg_.fetchWidth) {
        if (!fetchOne(t, tid, fetched))
            break;
    }
}

void
SmtCore::fetchStage()
{
    if (cfg_.dedicatedSliceResources) {
        // Section 6.3's dedicated-hardware variant: the main thread
        // and one helper thread each get a full fetch port.
        ThreadCtx &m = threads_[0];
        if (m.active && !m.fetchEnded && m.fetchStallUntil <= cycle_)
            fetchFrom(0);
        ThreadId s = pickFetchThread(/*slices_only=*/true);
        if (s != invalidThread)
            fetchFrom(s);
        return;
    }

    ThreadId tid = pickFetchThread();
    if (tid != invalidThread)
        fetchFrom(tid);
}

bool
SmtCore::fetchOne(ThreadCtx &t, ThreadId tid, unsigned &fetched)
{
    if (t.fetchStallUntil > cycle_ || t.fetchEnded)
        return false;
    if (windowCounterFor(t.isSlice) >= cfg_.windowSize) {
        ++s_.fetchWindowStalls;
        return false;
    }

    Addr pc = t.fetchPc;

    // I-cache: charge extra latency when the fetch crosses into a line
    // that misses (the hit latency is part of the front-end depth).
    Addr line = pc & ~static_cast<Addr>(cfg_.memory.l1iLineSize - 1);
    if (line != t.fetchLine) {
        Cycle lat = hierarchy_.accessInst(pc, cycle_);
        t.fetchLine = line;
        if (lat > cfg_.memory.l1Latency) {
            t.fetchStallUntil = cycle_ + (lat - cfg_.memory.l1Latency);
            s_.icacheStallCycles += lat - cfg_.memory.l1Latency;
            return false;
        }
    }

    const isa::Instruction *si = program_.fetch(pc);
    if (!si) {
        if (t.onWrongPath) {
            // Wandered off mapped code: idle until the squash.
            t.fetchStallUntil = stallForever;
            return false;
        }
        if (t.isSlice) {
            terminateSliceFetch(t, tid);
            return false;
        }
        SS_FATAL("main thread fetched unmapped pc 0x", std::hex, pc);
    }

    DynInst di;
    di.seq = nextSeq_++;
    di.thread = tid;
    di.pc = pc;
    di.si = si;
    di.wrongPath = t.onWrongPath;
    di.sliceThread = t.isSlice;
    di.fetchCycle = cycle_;
    di.eligibleAt = cycle_ + cfg_.frontEndDepth;

    bool end_fetch_group = false;

    // ---- functional execution (correct path only) ----
    if (!t.onWrongPath) {
        if (si->isStore() && !t.isSlice) {
            // Capture the old value for the reversal undo log.
            Addr ea = t.regs.read(si->rb) +
                      static_cast<std::uint64_t>(si->imm);
            unsigned size = si->op == isa::Opcode::Stq   ? 8
                            : si->op == isa::Opcode::Stl ? 4
                                                         : 1;
            if (!arch::MemoryImage::faults(ea))
                storeUndoLog_.push_back(
                    {di.seq, ea, size, mem_.read(ea, size)});
        }
        di.fx = arch::execute(*si, pc, t.regs, mem_, !t.isSlice);
        t.funcPc = di.fx.nextPc;
        if (di.fx.fault && !t.isSlice)
            SS_FATAL("main thread fault at pc 0x", std::hex, pc, " (",
                     si->disassemble(), "), ea 0x", di.fx.memAddr);
        if (t.isSlice && si->isLoad())
            adjustSliceLoad(t, di);
    }

    // ---- next-PC selection / branch prediction ----
    Addr next_pc = pc + isa::instBytes;

    if (si->isCondBranch()) {
        di.isBranch = true;
        bool pred;
        if (t.isSlice) {
            // Slices use static prediction (backward taken); their
            // loops are terminated by the max iteration count.
            pred = si->target < pc;
            if (pred && countSliceIteration(t, pc)) {
                end_fetch_group = true;
                terminateSliceFetch(t, tid);
            }
        } else {
            di.bpCheckpoint = bpu_.checkpoint();
            int override_dir = -1;
            if (perfect_.branchPerfect(pc) && !t.onWrongPath) {
                override_dir = di.fx.taken ? 1 : 0;
            } else {
                bool default_dir = bpu_.peekCond(pc);
                auto m = correlator_.onBranchFetch(pc, di.seq,
                                                   default_dir);
                if (m.overrideDir >= 0) {
                    override_dir = m.overrideDir;
                    di.usedCorrelator = true;
                    di.correlatorToken = m.token;
                } else if (m.matched) {
                    // Late binding: remember post-branch register
                    // state in case the slice later reverses us.
                    di.correlatorToken = m.token;
                    if (!t.onWrongPath)
                        di.regCheckpointAfter =
                            std::make_unique<arch::RegFile>(t.regs);
                }
            }
            pred = bpu_.predictCond(pc, override_dir, di.bpCtx);
        }
        di.predictedTaken = pred;
        next_pc = pred ? si->target : pc + isa::instBytes;
    } else if (si->traits().isUncondDirect) {
        // br/call: perfect BTB for direct branches.
        if (si->isCall() && !t.isSlice) {
            di.bpCheckpoint = bpu_.checkpoint();
            bpu_.pushCall(pc + isa::instBytes);
        }
        next_pc = si->target;
        // An unconditional backward br is the common slice back-edge
        // (exit conditions are often omitted entirely; the iteration
        // limit terminates the loop, Section 3.2).
        if (t.isSlice && si->target < pc && countSliceIteration(t, pc)) {
            end_fetch_group = true;
            terminateSliceFetch(t, tid);
        }
    } else if (si->isReturn()) {
        di.isBranch = true;
        di.bpCheckpoint = bpu_.checkpoint();
        next_pc = t.isSlice ? invalidAddr : bpu_.popReturn();
    } else if (si->isIndirect()) {
        // jmp/callr.
        di.isBranch = true;
        di.bpCheckpoint = bpu_.checkpoint();
        if (perfect_.branchPerfect(pc) && !t.onWrongPath) {
            next_pc = di.fx.nextPc;
            di.bpCtx.ghist = 0;
            di.bpCtx.phist = 0;
        } else {
            next_pc = t.isSlice ? invalidAddr
                                : bpu_.predictIndirect(pc, di.bpCtx);
        }
        if (si->isCall() && !t.isSlice)
            bpu_.pushCall(pc + isa::instBytes);
    } else if (si->op == isa::Opcode::Halt) {
        if (!t.isSlice && !t.onWrongPath) {
            t.fetchEnded = true;
            end_fetch_group = true;
        } else if (t.onWrongPath) {
            t.fetchStallUntil = stallForever;
            end_fetch_group = true;
        } else {
            terminateSliceFetch(t, tid);
            end_fetch_group = true;
        }
    } else if (si->op == isa::Opcode::SliceEnd) {
        if (t.isSlice) {
            terminateSliceFetch(t, tid);
        } else {
            t.fetchStallUntil = stallForever;  // stray on wrong path
        }
        end_fetch_group = true;
    }

    di.predictedTarget = next_pc;

    // Unknown indirect target: stall fetch until the jump resolves.
    if (next_pc == invalidAddr) {
        t.fetchStallUntil = stallForever;
        end_fetch_group = true;
        ++s_.indirectFetchStalls;
    } else {
        t.fetchPc = next_pc;
    }

    // Correct-path divergence: prediction disagrees with the actual
    // outcome; everything fetched beyond here is wrong-path.
    if (!t.onWrongPath && !di.wrongPath) {
        if (next_pc != di.fx.nextPc)
            t.onWrongPath = true;
    }

    // ---- slice hardware interactions ----
    if (!t.isSlice && cfg_.slicesEnabled) {
        int slice_idx = sliceTable_.forkAt(pc);
        if (slice_idx >= 0)
            forkSlice(di, slice_idx);
        if (correlator_.isInterestingPc(pc))
            correlator_.onKillFetch(pc, di.seq);
    } else if (t.isSlice) {
        if (const slice::PgiSpec *spec = sliceTable_.pgiAt(pc)) {
            di.pgiToken =
                correlator_.onPgiFetch(*spec, t.forkSeq, di.seq);
            di.pgiInvert = spec->invert;
            SS_DTRACE(Corr, "pgi pc=0x", std::hex, di.pc, std::dec,
                      " tok=", di.pgiToken, " fork=", t.forkSeq,
                      " cyc=", cycle_);
        }
    }
    // Check the flag before the isInterestingPc hash probe: this runs
    // per fetched conditional branch and must cost nothing when off.
    if (obs::traceEnabled(obs::TraceFlag::Corr)) [[unlikely]] {
        if (!t.isSlice && !di.wrongPath && si->isCondBranch() &&
            correlator_.isInterestingPc(pc))
            SS_DTRACE(Corr, "branch pc=0x", std::hex, di.pc, std::dec,
                      " seq=", di.seq, " actual=", int{di.fx.taken},
                      " pred=", int{di.predictedTaken},
                      " corr=", int{di.usedCorrelator},
                      " tok=", di.correlatorToken, " cyc=", cycle_);
    }

    // Slice faults terminate the slice (null-pointer dereference).
    if (t.isSlice && !di.wrongPath && di.fx.fault) {
        terminateSliceFetch(t, tid);
        end_fetch_group = true;
        ++s_.sliceFaults;
    }

    // ---- dependence tracking & window insertion ----
    if (!di.wrongPath)
        setupDependencies(di, t);

    SeqNum seq = di.seq;
    bool issue_ready = !di.wrongPath && di.pendingSrcs == 0;
    DynInst &win = inFlight_.emplace(seq, std::move(di));
    t.rob.push_back(seq);
    ++windowCounterFor(t.isSlice);
    ++t.icount;
    ++fetched;
    if (issue_ready)
        ready_.push_back(seq);

    if (t.isSlice) {
        ++s_.sliceFetched;
    } else {
        ++s_.mainFetched;
        if (win.wrongPath)
            ++s_.mainFetchedWrongpath;
    }

    if (events_) [[unlikely]]
        events_->push(obs::EventKind::Fetch, tid, win.pc, seq,
                      win.wrongPath);
    SS_DTRACE(Fetch, "tid=", int{tid}, " pc=0x", std::hex, win.pc,
              std::dec, " seq=", seq, " wp=", int{win.wrongPath},
              " cyc=", cycle_);

    return !end_fetch_group;
}

void
SmtCore::forkSlice(DynInst &fork_inst, int slice_idx)
{
    const slice::SliceDescriptor &desc =
        sliceTable_.slice(static_cast<unsigned>(slice_idx));

    // Fork-confidence gating (Section 6.3): skip fork points whose
    // recent slices produced nothing the main thread consumed. Gated
    // points still fork occasionally so changed behaviour can
    // re-enable them.
    if (cfg_.forkConfidenceGating) {
        auto it = forkGate_.find(desc.forkPc);
        if (it != forkGate_.end() && !it->second.confidence.taken()) {
            if (++it->second.probe < 32) {
                ++s_.forksGated;
                return;
            }
            it->second.probe = 0;
        }
    }

    ThreadId free_tid = invalidThread;
    for (ThreadId tid = 1; tid < threads_.size(); ++tid) {
        if (!threads_[tid].active) {
            free_tid = tid;
            break;
        }
    }
    if (free_tid == invalidThread) {
        // "If no threads are idle, the fork request is ignored."
        ++s_.forksIgnored;
        return;
    }

    ThreadCtx &parent = threads_[fork_inst.thread];
    ThreadCtx &st = threads_[free_tid];
    SS_ASSERT(st.rob.empty(), "idle thread with in-flight insts");

    st.active = true;
    st.isSlice = true;
    st.sliceIdx = slice_idx;
    st.forkSeq = fork_inst.seq;
    st.loopIters = 0;
    st.fetchEnded = false;
    st.killAtCycle = 0;
    // slice.kill injection: arm a forced termination of this slice a
    // fixed delay after the fork (applied at retire time).
    if (injector_.enabled() && injector_.fire(fault::Site::SliceKill))
        st.killAtCycle = cycle_ + injector_.arg(fault::Site::SliceKill);
    st.onWrongPath = false;
    st.fetchPc = desc.slicePc;
    st.funcPc = desc.slicePc;
    st.fetchLine = invalidAddr;
    st.fetchStallUntil = cycle_ + 1;
    st.icount = 0;
    st.lastWriter.fill(invalidSeqNum);
    st.regs.reset();
    // Register communication: copy the live-in map entries (Section
    // 4.3). The functional value at fork-fetch time approximates the
    // copy-at-rename semantics.
    for (RegIndex r : desc.liveIns)
        st.regs.write(r, parent.regs.read(r));

    fork_inst.forkedThread = free_tid;
    correlator_.onFork(desc, free_tid, fork_inst.seq);
    ++s_.forks;
    if (events_) [[unlikely]]
        events_->push(obs::EventKind::SliceFork, free_tid,
                      desc.slicePc, fork_inst.seq, desc.forkPc);
    SS_DTRACE(Slice, "fork pc=0x", std::hex, desc.forkPc,
              " slice=0x", desc.slicePc, std::dec,
              " tid=", int{free_tid}, " forkSeq=", fork_inst.seq,
              " cyc=", cycle_);
}

void
SmtCore::adjustSliceLoad(ThreadCtx &t, DynInst &di)
{
    // The functional model commits main-thread stores at fetch, which
    // is far earlier than a real machine commits them. A slice load
    // racing such a store must see the value as of its fork point, so
    // reconstruct it from the store-undo log: the oldest in-flight
    // main-thread store to this address that is younger than the fork
    // recorded exactly that value.
    if (di.fx.fault || di.fx.memAddr == invalidAddr)
        return;
    for (const StoreUndo &u : storeUndoLog_) {
        if (u.seq <= t.forkSeq)
            continue;
        if (u.addr != di.fx.memAddr)
            continue;
        std::uint64_t v = u.oldValue;
        switch (di.si->op) {
          case isa::Opcode::Ldq:
            break;
          case isa::Opcode::Ldl:
            if (u.size < 4)
                return;  // partial overlap: keep the raw value
            v = static_cast<std::uint64_t>(
                signExtend(v & 0xffffffffu, 32));
            break;
          case isa::Opcode::Ldbu:
            v &= 0xff;
            break;
          default:
            return;  // prefetch: value unused
        }
        t.regs.write(di.si->rc, v);
        di.fx.value = v;
        ++s_.sliceLoadsForkAdjusted;
        return;  // oldest matching entry = value as of the fork
    }
}

bool
SmtCore::countSliceIteration(ThreadCtx &t, Addr pc)
{
    const slice::SliceDescriptor &desc =
        sliceTable_.slice(static_cast<unsigned>(t.sliceIdx));
    if (pc != desc.loopBackEdgePc)
        return false;
    ++t.loopIters;
    return t.loopIters >= desc.maxLoopIters;
}

void
SmtCore::terminateSliceFetch(ThreadCtx &t, ThreadId tid)
{
    SS_ASSERT(t.isSlice, "terminating a non-slice thread");
    t.fetchEnded = true;
    SS_DTRACE(Slice, "fetch-end tid=", int{tid},
              " forkSeq=", t.forkSeq, " iters=", t.loopIters,
              " cyc=", cycle_);
}

} // namespace specslice::core
