#include "core/smt_core.hh"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "check/checker.hh"
#include "common/failure.hh"
#include "common/logging.hh"
#include "obs/trace.hh"

namespace specslice::core
{

const char *
outcomeName(SimOutcome outcome)
{
    switch (outcome) {
      case SimOutcome::Completed:
        return "completed";
      case SimOutcome::CycleLimit:
        return "cycle_limit";
      case SimOutcome::Watchdog:
        return "watchdog";
      case SimOutcome::CheckerDivergence:
        return "checker_divergence";
      case SimOutcome::Fault:
        return "fault";
    }
    return "unknown";
}

namespace
{

/** Far beyond any legitimate stall (worst-case memory chains are a
 *  few thousand cycles), far below the 50x cycle budget. */
constexpr Cycle defaultWatchdogCycles = 250'000;

} // namespace

Cycle
defaultCycleLimit(std::uint64_t max_main_instructions,
                  std::uint64_t warmup_instructions)
{
    const std::uint64_t budget =
        max_main_instructions + warmup_instructions;
    // Slack scales with the total budget (warm-up included) so a run
    // with a large warm-up gets proportionally as much headroom as one
    // with a large measured region; the floor keeps small smoke runs
    // from a uselessly tight limit.
    const Cycle slack = std::max<Cycle>(100'000, budget / 4);
    return 50 * budget + slack;
}

SmtCore::Handles::Handles(StatGroup &g)
    : fetchWindowStalls(g.scalar("fetch_window_stalls")),
      icacheStallCycles(g.scalar("icache_stall_cycles")),
      indirectFetchStalls(g.scalar("indirect_fetch_stalls")),
      sliceFaults(g.scalar("slice_faults")),
      sliceFetched(g.scalar("slice_fetched")),
      mainFetched(g.scalar("main_fetched")),
      mainFetchedWrongpath(g.scalar("main_fetched_wrongpath")),
      forksGated(g.scalar("forks_gated")),
      forksIgnored(g.scalar("forks_ignored")),
      forks(g.scalar("forks")),
      sliceLoadsForkAdjusted(g.scalar("slice_loads_fork_adjusted")),
      mainStores(g.scalar("main_stores")),
      mainStoreMisses(g.scalar("main_store_misses")),
      slicePrefetches(g.scalar("slice_prefetches")),
      mainLoads(g.scalar("main_loads")),
      mainLoadMisses(g.scalar("main_load_misses")),
      mainCoveredMisses(g.scalar("main_covered_misses")),
      condBranches(g.scalar("cond_branches")),
      mispredictions(g.scalar("mispredictions")),
      correlatorUsed(g.scalar("correlator_used")),
      correlatorWrong(g.scalar("correlator_wrong")),
      indirectBranches(g.scalar("indirect_branches")),
      indirectMispredictions(g.scalar("indirect_mispredictions")),
      returns(g.scalar("returns")),
      returnMispredictions(g.scalar("return_mispredictions")),
      sliceLocalSquashes(g.scalar("slice_local_squashes")),
      forksSquashed(g.scalar("forks_squashed")),
      sliceSquashedInsts(g.scalar("slice_squashed_insts")),
      mainSquashedInsts(g.scalar("main_squashed_insts")),
      lateAgreements(g.scalar("late_agreements")),
      lateReversals(g.scalar("late_reversals")),
      retireWbStalls(g.scalar("retire_wb_stalls")),
      sliceRetired(g.scalar("slice_retired")),
      slicesTerminatedDead(g.scalar("slices_terminated_dead")),
      slicesCompleted(g.scalar("slices_completed"))
{
}

SmtCore::SmtCore(const CoreConfig &cfg, const isa::Program &program,
                 arch::MemoryImage &mem)
    : cfg_(cfg),
      program_(program),
      mem_(mem),
      hierarchy_(cfg.memory),
      bpu_(cfg.predictor),
      sliceTable_(cfg.sliceTable),
      correlator_(cfg.correlator),
      stats_("core"),
      s_(stats_)
{
    SS_ASSERT(cfg.numThreads >= 1, "need at least the main thread");
    threads_.resize(cfg.numThreads);
}

void
SmtCore::loadSlice(const slice::SliceDescriptor &desc)
{
    sliceTable_.load(desc);
}

DynInst *
SmtCore::inst(SeqNum seq)
{
    return inFlight_.find(seq);
}

SeqNum
SmtCore::oldestInFlight() const
{
    SeqNum oldest = nextSeq_;
    for (const ThreadCtx &t : threads_) {
        if (t.active && !t.rob.empty())
            oldest = std::min(oldest, t.rob.front());
    }
    return oldest;
}

void
SmtCore::resetStats()
{
    stats_.reset();
    hierarchy_.stats().reset();
    correlator_.stats().reset();
    // Non-profiling runs never touch the per-PC map (all writers are
    // gated on profileEnabled_), so skip it entirely here too.
    if (profileEnabled_)
        profile_.perPc.clear();
}

void
SmtCore::restartIntervals(IntervalState &st, Cycle interval_cycles)
{
    st.core = stats_.snapshot();
    st.mem = hierarchy_.stats().snapshot();
    st.corr = correlator_.stats().snapshot();
    st.retiredBase = mainRetired_;
    st.windowStart = cycle_;
    st.nextBoundary = cycle_ + interval_cycles;
    st.index = 0;
}

void
SmtCore::captureInterval(IntervalState &st, Cycle interval_cycles,
                         std::vector<obs::IntervalRecord> &out)
{
    StatGroup::Snapshot dc = stats_.snapshotDelta(st.core);
    StatGroup::Snapshot dm = hierarchy_.stats().snapshotDelta(st.mem);
    StatGroup::Snapshot dk =
        correlator_.stats().snapshotDelta(st.corr);

    obs::IntervalRecord rec;
    rec.index = st.index++;
    rec.startCycle = st.windowStart;
    rec.endCycle = cycle_;
    rec.retired = mainRetired_ - st.retiredBase;
    rec.loads = dc["main_loads"];
    rec.l1dMisses = dc["main_load_misses"];
    rec.l2Misses = dm["l2_misses"];
    rec.condBranches = dc["cond_branches"];
    rec.mispredictions = dc["mispredictions"];
    rec.forks = dc["forks"];
    rec.predsGenerated = dk["predictions_generated"];
    rec.predsBound = dk["matches_full"] + dk["matches_late"];
    rec.predsUsed = dc["correlator_used"];
    rec.predsKilled = dk["kills_loop"] + dk["kills_slice"] +
                      dk["kills_applied_from_debt"];
    out.push_back(rec);

    st.retiredBase = mainRetired_;
    st.windowStart = cycle_;
    st.nextBoundary = cycle_ + interval_cycles;
}

RunResult
SmtCore::run(Addr entry_pc, const RunOptions &opts)
{
    perfect_ = opts.perfect;
    profileEnabled_ = opts.profile;
    events_ = opts.events;
    checker_ = opts.checker;
    correlator_.setEventSink(events_);

    // Fault injection: one deterministic per-run instance. Units get a
    // null pointer when no plan is armed, so disabled runs pay exactly
    // one null check per tap.
    injector_ = fault::Injector(opts.faults);
    fault::Injector *inj = injector_.enabled() ? &injector_ : nullptr;
    hierarchy_.setInjector(inj);
    bpu_.setInjector(inj);
    correlator_.setInjector(inj);
    if (profileEnabled_) {
        // One bucket per static instruction avoids rehash-and-move
        // churn as the profile fills in.
        profile_.perPc.reserve(program_.staticSize());
    }

    ThreadCtx &main = threads_[0];
    main.active = true;
    main.isSlice = false;
    main.fetchPc = entry_pc;
    main.funcPc = entry_pc;
    // Mid-program (checkpointed/sampled) starts inject the snapshot's
    // architectural registers and replay its recent branch outcomes so
    // the front end doesn't start artificially cold.
    if (opts.initialRegs)
        main.regs = *opts.initialRegs;
    if (opts.branchWarmth) {
        for (const arch::BranchWarmthRecord &w : *opts.branchWarmth) {
            if (w.kind == arch::WarmthKind::CondBranch)
                bpu_.warmCond(w.pc, w.taken);
            else
                bpu_.warmIndirect(w.pc, w.target);
        }
    }
    if (opts.memWarmth) {
        for (const arch::MemWarmthRecord &m : *opts.memWarmth)
            hierarchy_.warmData(m.addr, m.isStore);
    }
    if (opts.instWarmth) {
        for (Addr pc : *opts.instWarmth)
            hierarchy_.warmInst(pc);
    }

    Cycle max_cycles =
        opts.maxCycles ? opts.maxCycles
                       : defaultCycleLimit(opts.maxMainInstructions,
                                           opts.warmupInstructions);
    std::uint64_t budget =
        opts.maxMainInstructions + opts.warmupInstructions;

    bool warm = opts.warmupInstructions == 0;
    Cycle measure_start = 0;
    std::uint64_t measured_base = 0;

    // Wall-clock phase split (observability only, not serialized):
    // two clock reads per run plus one at the warm-up boundary.
    const auto wall_start = std::chrono::steady_clock::now();
    auto wall_boundary = wall_start;

    const Cycle iv_cycles = opts.intervalCycles;
    IntervalState iv;
    // When the caller provides a sink, accumulate directly into it so
    // partial windows are visible to crash-dump handlers mid-run.
    std::vector<obs::IntervalRecord> local_intervals;
    std::vector<obs::IntervalRecord> &intervals =
        opts.intervalSink ? *opts.intervalSink : local_intervals;
    intervals.clear();
    if (iv_cycles)
        restartIntervals(iv, iv_cycles);

    const Cycle watchdog =
        opts.watchdogEnabled
            ? (opts.watchdogCycles ? opts.watchdogCycles
                                   : defaultWatchdogCycles)
            : 0;
    Cycle last_progress = cycle_;
    std::uint64_t last_retired = mainRetired_;

    SimOutcome outcome = SimOutcome::Completed;
    std::string diagnosis;

    while (cycle_ < max_cycles) {
        ++cycle_;
        if (events_)
            events_->setNow(cycle_);
        hierarchy_.tick(cycle_);
        completeStage();
        issueStage();
        fetchStage();
        retireStage();

        if (mainRetired_ != last_retired) {
            last_retired = mainRetired_;
            last_progress = cycle_;
        } else if (watchdog && cycle_ - last_progress >= watchdog) {
            diagnosis = diagnoseStall(cycle_ - last_progress);
            SS_WARN(diagnosis);
            outcome = SimOutcome::Watchdog;
            break;
        }
        // Cooperative cancellation (JobPool deadlines): one TLS load
        // every 8K cycles.
        if ((cycle_ & 0x1fff) == 0)
            throwIfCancelled("core run");

        if (!warm && mainRetired_ >= opts.warmupInstructions) {
            warm = true;
            resetStats();
            measure_start = cycle_;
            measured_base = mainRetired_;
            wall_boundary = std::chrono::steady_clock::now();
            // The time-series covers the measured region only:
            // discard warm-up windows and restart at the boundary so
            // window deltas sum to the final (post-reset) counters.
            if (iv_cycles) {
                intervals.clear();
                restartIntervals(iv, iv_cycles);
            }
        }
        if (iv_cycles && cycle_ >= iv.nextBoundary)
            captureInterval(iv, iv_cycles, intervals);
        if (mainRetired_ >= budget)
            break;
        if (mainHalted_ && threads_[0].rob.empty())
            break;
    }

    // Close the final (possibly partial) window.
    if (iv_cycles && cycle_ > iv.windowStart)
        captureInterval(iv, iv_cycles, intervals);
    if (events_)
        correlator_.drainEvents();

    // A run that stopped at the hard cycle limit with its budget unmet
    // and the program still running was truncated, not completed.
    if (outcome == SimOutcome::Completed && cycle_ >= max_cycles &&
        mainRetired_ < budget &&
        !(mainHalted_ && threads_[0].rob.empty()))
        outcome = SimOutcome::CycleLimit;

    RunResult res;
    res.outcome = outcome;
    res.diagnosis = std::move(diagnosis);
    res.faultsInjected = injector_.firedTotal();
    res.faultSummary = injector_.firedSummary();
    if (opts.intervalSink)
        res.intervals = *opts.intervalSink;
    else
        res.intervals = std::move(local_intervals);
    res.cycles = cycle_ - measure_start;
    res.totalCycles = cycle_;
    {
        const auto wall_end = std::chrono::steady_clock::now();
        std::chrono::duration<double> wu = wall_boundary - wall_start;
        std::chrono::duration<double> me = wall_end - wall_boundary;
        res.wallWarmupSeconds = wu.count();
        res.wallMeasureSeconds = me.count();
    }
    res.mainRetired = mainRetired_ - measured_base;
    res.mainFetched = s_.mainFetched;
    res.mainFetchedWrongPath = s_.mainFetchedWrongpath;
    res.sliceFetched = s_.sliceFetched;
    res.sliceRetired = s_.sliceRetired;
    res.condBranches = s_.condBranches;
    res.mispredictions = s_.mispredictions;
    res.loads = s_.mainLoads;
    res.l1dMissesMain = s_.mainLoadMisses;
    res.coveredMisses = hierarchy_.stats().get("covered_misses");
    res.slicePrefetches = s_.slicePrefetches;
    res.forks = s_.forks;
    res.forksSquashed = s_.forksSquashed;
    res.forksIgnored = s_.forksIgnored;
    res.predictionsGenerated =
        correlator_.stats().get("predictions_generated");
    res.correlatorUsed = s_.correlatorUsed;
    res.correlatorWrong = s_.correlatorWrong;
    res.latePredictions = correlator_.stats().get("matches_late");
    res.lateReversals = s_.lateReversals;
    res.detail.merge(stats_);
    res.detail.merge(hierarchy_.stats());
    res.detail.merge(correlator_.stats());
    res.detail.merge(bpu_.stats());
    if (profileEnabled_)
        res.profile = std::move(profile_);
    return res;
}

void
SmtCore::setupDependencies(DynInst &di, ThreadCtx &t)
{
    const isa::OpTraits &tr = di.si->traits();
    RegIndex srcs[3];
    unsigned n = 0;
    if (tr.readsRa)
        srcs[n++] = di.si->ra;
    if (tr.readsRb)
        srcs[n++] = di.si->rb;
    if (tr.readsRc)
        srcs[n++] = di.si->rc;

    for (unsigned i = 0; i < n; ++i) {
        RegIndex r = srcs[i];
        if (r == isa::regZero)
            continue;
        SeqNum w = t.lastWriter[r];
        if (w == invalidSeqNum)
            continue;
        DynInst *p = inst(w);
        if (p && !p->completed) {
            ++di.pendingSrcs;
            p->dependents.push_back(di.seq);
        }
    }

    if (tr.writesRc && di.si->rc != isa::regZero) {
        di.prevWriter = t.lastWriter[di.si->rc];
        di.setsLastWriter = true;
        t.lastWriter[di.si->rc] = di.seq;
    }
}

void
SmtCore::wakeupDependents(DynInst &di)
{
    for (SeqNum dep : di.dependents) {
        DynInst *d = inst(dep);
        if (!d || d->wrongPath)
            continue;
        SS_ASSERT(d->pendingSrcs > 0, "wakeup underflow");
        if (--d->pendingSrcs == 0 && !d->issued)
            ready_.push_back(d->seq);
    }
    di.dependents.clear();
}

void
SmtCore::issueStage()
{
    // Sort the entries appended since the last drain and merge them
    // into the sorted prefix: the scan below then visits candidates
    // in VN# (oldest-first) order, exactly as the ordered set did.
    if (readySortedPrefix_ < ready_.size()) {
        auto mid = ready_.begin() +
                   static_cast<std::ptrdiff_t>(readySortedPrefix_);
        std::sort(mid, ready_.end());
        std::inplace_merge(ready_.begin(), mid, ready_.end());
    }

    unsigned issued = 0;
    unsigned int_alu = 0, mem_ports = 0, complex = 0, fp = 0;
    readyKept_.clear();

    for (SeqNum seq : ready_) {
        DynInst *di = inst(seq);
        if (!di || di->issued)
            continue;  // squashed since insertion: drop lazily
        if (di->eligibleAt > cycle_) {
            readyKept_.push_back(seq);
            continue;
        }

        const isa::OpTraits &tr = di->si->traits();
        // With dedicated slice resources, helper-thread instructions
        // use their own execution hardware; only the shared cache
        // ports constrain them.
        bool dedicated =
            di->sliceThread && cfg_.dedicatedSliceResources;
        if (!dedicated && issued >= cfg_.issueWidth) {
            readyKept_.push_back(seq);
            continue;
        }

        bool fu_ok = true;
        switch (tr.fu) {
          case isa::FuClass::IntAlu:
          case isa::FuClass::Branch:
            fu_ok = dedicated || int_alu < cfg_.numIntAlu;
            if (fu_ok && !dedicated)
                ++int_alu;
            break;
          case isa::FuClass::MemPort:
            fu_ok = mem_ports < cfg_.numMemPorts;
            if (fu_ok)
                ++mem_ports;
            break;
          case isa::FuClass::IntComplex:
            fu_ok = dedicated || complex < cfg_.numComplex;
            if (fu_ok && !dedicated)
                ++complex;
            break;
          case isa::FuClass::FpAlu:
            fu_ok = dedicated || fp < cfg_.numFp;
            if (fu_ok && !dedicated)
                ++fp;
            break;
          case isa::FuClass::None:
            break;
        }
        if (!fu_ok) {
            readyKept_.push_back(seq);
            continue;
        }

        di->issued = true;
        if (!dedicated)
            ++issued;

        Cycle lat = tr.latency;
        if (tr.isLoad || tr.isStore)
            lat = issueMemAccess(*di);

        di->completeAt = cycle_ + lat;
        completions_.push({di->completeAt, seq});
        if (events_) [[unlikely]]
            events_->push(obs::EventKind::Issue, di->thread, di->pc,
                          seq, lat);
        SS_DTRACE(Smt, "issue seq=", seq, " pc=0x", std::hex, di->pc,
                  std::dec, " lat=", lat, " cyc=", cycle_);
    }

    // The kept entries are a subsequence of a sorted scan: already
    // sorted, so the next cycle merges only fresh insertions.
    ready_.swap(readyKept_);
    readySortedPrefix_ = ready_.size();
}

Cycle
SmtCore::issueMemAccess(DynInst &di)
{
    const isa::OpTraits &tr = di.si->traits();
    Addr ea = di.fx.memAddr;

    if (di.fx.fault) {
        // Faulting slice access: no cache traffic, minimal latency.
        return cfg_.memory.l1Latency;
    }

    if (tr.isStore) {
        // Stores probe the L1 (dirty on hit); misses are handled at
        // retirement via the write buffer. The pipeline never waits.
        auto res = hierarchy_.accessStore(ea, cycle_);
        if (profileEnabled_ && !di.sliceThread) {
            auto &c = profile_.perPc[di.pc];
            ++c.storeExec;
            if (!res.l1Hit && !res.pvBufHit && !res.writeBufferHit)
                ++c.storeMiss;
        }
        if (!di.sliceThread) {
            ++s_.mainStores;
            if (!res.l1Hit && !res.pvBufHit && !res.writeBufferHit)
                ++s_.mainStoreMisses;
        }
        return 1;
    }

    // Loads (and prefetch ops).
    auto res = hierarchy_.accessData(ea, false, di.sliceThread, cycle_);
    bool l1_level_miss = !res.l1Hit && !res.pvBufHit &&
                         !res.writeBufferHit;

    if (di.sliceThread) {
        ++s_.slicePrefetches;
    } else {
        ++s_.mainLoads;
        if (l1_level_miss)
            ++s_.mainLoadMisses;
        if (res.coveredBySlice)
            ++s_.mainCoveredMisses;
        if (profileEnabled_) {
            auto &c = profile_.perPc[di.pc];
            ++c.loadExec;
            if (l1_level_miss)
                ++c.loadMiss;
        }
    }

    if (!di.sliceThread && perfect_.loadPerfect(di.pc))
        return cfg_.memory.l1Latency;
    return res.latency;
}

void
SmtCore::completeStage()
{
    while (!completions_.empty() && completions_.top().first <= cycle_) {
        SeqNum seq = completions_.top().second;
        completions_.pop();
        DynInst *di = inst(seq);
        if (!di || !di->issued || di->completed)
            continue;  // squashed or stale event
        di->completed = true;
        wakeupDependents(*di);

        if (di->pgiToken != 0) {
            bool dir = (di->fx.value != 0) != di->pgiInvert;
            auto late = correlator_.onPgiExecute(di->pgiToken, dir);
            handleLateResult(late);
        }

        if (di->isBranch && !di->wrongPath)
            resolveBranch(*di);
    }
}

void
SmtCore::resolveBranch(DynInst &di)
{
    ThreadCtx &t = threads_[di.thread];
    bool actual_taken = di.fx.taken;
    Addr actual_next = di.fx.nextPc;
    bool mispredicted;

    if (di.si->isCondBranch())
        mispredicted = di.predictedTaken != actual_taken;
    else  // indirect (ret/jmp/callr): verify the followed target
        mispredicted = di.predictedTarget != actual_next;

    if (!di.sliceThread) {
        if (di.si->isCondBranch()) {
            ++s_.condBranches;
            if (mispredicted)
                ++s_.mispredictions;
            if (di.usedCorrelator) {
                ++s_.correlatorUsed;
                if (mispredicted)
                    ++s_.correlatorWrong;
                SS_DTRACE(Corr, mispredicted ? "corr-wrong"
                                             : "corr-right",
                          " pc=0x", std::hex, di.pc, std::dec,
                          " seq=", di.seq,
                          " pred=", int{di.predictedTaken},
                          " actual=", int{actual_taken},
                          " tok=", di.correlatorToken,
                          " cyc=", cycle_);
            }
            if (profileEnabled_)
                recordBranchProfile(di, mispredicted);
            bpu_.updateCond(di.pc, di.bpCtx, actual_taken);
        } else if (di.si->isIndirect() && !di.si->isReturn()) {
            ++s_.indirectBranches;
            if (mispredicted)
                ++s_.indirectMispredictions;
            bpu_.updateIndirect(di.pc, di.bpCtx, actual_next);
        } else if (di.si->isReturn()) {
            ++s_.returns;
            if (mispredicted)
                ++s_.returnMispredictions;
        }
    }

    if (!mispredicted)
        return;

    // Squash younger instructions and redirect fetch down the correct
    // path. All younger instructions in this thread are wrong-path by
    // construction, but the undo path is cheap and defensive.
    squashThread(di.thread, di.seq, true);

    if (!di.sliceThread) {
        correlator_.squashMain(di.seq);
        bpu_.restore(di.bpCheckpoint);
        if (di.si->isCondBranch())
            bpu_.shiftResolved(actual_taken);
        else if (di.si->isIndirect() && !di.si->isReturn())
            bpu_.shiftResolvedTarget(actual_next);
    } else {
        correlator_.squashSlice(t.forkSeq, di.seq);
        ++s_.sliceLocalSquashes;
    }

    di.predictedTaken = actual_taken;
    di.predictedTarget = actual_next;
    redirectFetch(di.thread, actual_next, cycle_ + 1);
}

void
SmtCore::recordBranchProfile(const DynInst &di, bool mispredicted)
{
    auto &c = profile_.perPc[di.pc];
    ++c.branchExec;
    if (mispredicted)
        ++c.branchMispred;
}

void
SmtCore::squashThread(ThreadId tid, SeqNum younger_than,
                      bool undo_functional)
{
    ThreadCtx &t = threads_[tid];
    while (!t.rob.empty() && t.rob.back() > younger_than) {
        SeqNum seq = t.rob.back();
        t.rob.pop_back();
        DynInst *dp = inFlight_.find(seq);
        SS_ASSERT(dp, "rob entry missing");
        DynInst &d = *dp;

        if (d.setsLastWriter && t.lastWriter[d.si->rc] == d.seq)
            t.lastWriter[d.si->rc] = d.prevWriter;

        if (d.forkedThread != invalidThread) {
            // The fork point is squashed: kill the forked slice.
            ThreadCtx &st = threads_[d.forkedThread];
            if (st.active && st.isSlice && st.forkSeq == d.seq) {
                squashThread(d.forkedThread, invalidSeqNum, false);
                st.active = false;
                ++s_.forksSquashed;
            }
        }

        if (undo_functional && !d.wrongPath && !d.sliceThread &&
            d.si->isStore()) {
            // Undo this store's functional effect (reversal squash).
            while (!storeUndoLog_.empty() &&
                   storeUndoLog_.back().seq >= d.seq) {
                const StoreUndo &u = storeUndoLog_.back();
                if (u.seq == d.seq)
                    mem_.write(u.addr, u.oldValue, u.size);
                storeUndoLog_.pop_back();
            }
        }

        // ready_ entries for squashed VN#s are dropped lazily by
        // issueStage (the in-flight lookup fails).
        unsigned &occupancy = windowCounterFor(d.sliceThread);
        SS_ASSERT(occupancy > 0 && t.icount > 0,
                  "occupancy underflow");
        --occupancy;
        --t.icount;
        ++(d.sliceThread ? s_.sliceSquashedInsts : s_.mainSquashedInsts);
        if (events_) [[unlikely]]
            events_->push(obs::EventKind::Squash, tid, d.pc, seq);
        inFlight_.erase(seq);
    }
    SS_DTRACE(Smt, "squash tid=", int{tid},
              " younger_than=", younger_than, " cyc=", cycle_);
}

void
SmtCore::redirectFetch(ThreadId tid, Addr pc, Cycle resume_at)
{
    ThreadCtx &t = threads_[tid];
    t.fetchPc = pc;
    t.fetchStallUntil = resume_at;
    t.onWrongPath = (pc != t.funcPc);
    t.fetchLine = invalidAddr;
}

void
SmtCore::handleLateResult(
    const slice::PredictionCorrelator::LateResult &late)
{
    if (!late.hasConsumer || !cfg_.lateReversalsEnabled)
        return;
    DynInst *br = inst(late.consumerSeq);
    if (!br || br->completed || br->wrongPath)
        return;  // consumer resolved, squashed or speculative-dead
    if (late.computedDir == late.usedDir) {
        ++s_.lateAgreements;
        return;
    }

    // Early resolution (Section 5.3): the slice's computed outcome
    // disagrees with the direction the branch was fetched with; reverse
    // the prediction and redirect fetch before the branch resolves.
    SS_ASSERT(br->si->isCondBranch(), "late binding on non-branch");
    ++s_.lateReversals;

    ThreadCtx &t = threads_[br->thread];
    if (br->regCheckpointAfter)
        t.regs = *br->regCheckpointAfter;
    squashThread(br->thread, br->seq, true);
    correlator_.squashMain(br->seq);

    bpu_.restore(br->bpCheckpoint);
    bpu_.shiftResolved(late.computedDir);
    br->predictedTaken = late.computedDir;
    br->usedCorrelator = true;
    t.funcPc = br->fx.nextPc;

    Addr new_pc = late.computedDir ? br->si->target
                                   : br->pc + isa::instBytes;
    br->predictedTarget = new_pc;
    redirectFetch(br->thread, new_pc, cycle_ + 1);
}

void
SmtCore::retireStage()
{
    unsigned budget = cfg_.retireWidth;

    for (ThreadId tid = 0; tid < threads_.size() && budget > 0; ++tid) {
        ThreadCtx &t = threads_[tid];
        if (!t.active)
            continue;
        while (budget > 0 && !t.rob.empty()) {
            SeqNum seq = t.rob.front();
            DynInst *d = inst(seq);
            SS_ASSERT(d, "rob head missing");
            if (!d->completed)
                break;
            SS_ASSERT(!d->wrongPath, "wrong-path inst at retire");

            if (d->si->isStore() && !d->sliceThread && !d->fx.fault) {
                if (!hierarchy_.retireStore(d->fx.memAddr, cycle_)) {
                    ++s_.retireWbStalls;
                    break;  // write buffer full: retry next cycle
                }
            }

            if (d->si->op == isa::Opcode::Halt && !d->sliceThread)
                mainHalted_ = true;

            if (d->setsLastWriter && t.lastWriter[d->si->rc] == d->seq)
                t.lastWriter[d->si->rc] = invalidSeqNum;

            t.rob.pop_front();
            --windowCounterFor(d->sliceThread);
            --t.icount;
            --budget;
            if (d->sliceThread) {
                ++s_.sliceRetired;
            } else {
#ifndef SS_CHECK_DISABLED
                if (checker_) [[unlikely]]
                    checkRetirement(*d);
#endif
                ++mainRetired_;
            }
            if (events_) [[unlikely]]
                events_->push(obs::EventKind::Retire, tid, d->pc, seq);
            inFlight_.erase(seq);
        }

        if (t.isSlice && t.fetchEnded && t.rob.empty() && t.active)
            releaseSliceThread(tid);
    }

    // slice.kill injection: forcibly terminate slices whose armed
    // kill cycle has arrived.
    if (injector_.armed(fault::Site::SliceKill))
        applyInjectedSliceKills();

    // Stop slices whose every branch-queue entry has been killed by a
    // retired (non-speculative) slice kill: none of their remaining
    // work can be consumed, so squash them to free the shared window.
    if (cfg_.terminateDeadSlices) {
        SeqNum retired_bound = oldestInFlight() - 1;
        for (ThreadId tid = 1; tid < threads_.size(); ++tid) {
            ThreadCtx &t = threads_[tid];
            if (!t.isSlice || !t.active || t.fetchEnded)
                continue;
            if (!correlator_.allEntriesDead(t.forkSeq, retired_bound))
                continue;
            squashThread(tid, invalidSeqNum, false);
            correlator_.squashSlice(t.forkSeq, invalidSeqNum);
            t.fetchEnded = true;
            ++s_.slicesTerminatedDead;
            releaseSliceThread(tid);
        }
    }

    // Reclaim correlator slots whose kills have retired, and prune the
    // store-undo log.
    SeqNum bound = oldestInFlight();
    correlator_.retireUpTo(bound > 0 ? bound - 1 : 0);
    while (!storeUndoLog_.empty() && storeUndoLog_.front().seq < bound)
        storeUndoLog_.pop_front();
}

void
SmtCore::applyInjectedSliceKills()
{
    // Same termination sequence as a dead-slice stop: discard the
    // slice's in-flight work and its not-yet-computed correlator
    // slots, then release the thread. Slices never store, so no
    // architectural state is touched — the checker must stay green.
    for (ThreadId tid = 1; tid < threads_.size(); ++tid) {
        ThreadCtx &t = threads_[tid];
        if (!t.isSlice || !t.active || t.fetchEnded ||
            t.killAtCycle == 0 || cycle_ < t.killAtCycle)
            continue;
        squashThread(tid, invalidSeqNum, false);
        correlator_.squashSlice(t.forkSeq, invalidSeqNum);
        t.fetchEnded = true;
        t.killAtCycle = 0;
        SS_DTRACE(Slice, "injected kill tid=", int{tid},
                  " forkSeq=", t.forkSeq, " cyc=", cycle_);
        releaseSliceThread(tid);
    }
}

std::string
SmtCore::diagnoseStall(Cycle stalled_for)
{
    ThreadCtx &main = threads_[0];
    std::string d = "watchdog: main thread retired nothing for " +
                    std::to_string(stalled_for) + " cycles (cycle " +
                    std::to_string(cycle_) + ", retired " +
                    std::to_string(mainRetired_) + ")";

    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "\n  fetch: pc=0x%llx wrong_path=%d ended=%d "
                  "stall_until=%llu halted=%d",
                  static_cast<unsigned long long>(main.fetchPc),
                  int{main.onWrongPath}, int{main.fetchEnded},
                  static_cast<unsigned long long>(main.fetchStallUntil),
                  int{mainHalted_});
    d += buf;

    // Stalled-stage breakdown of the main-thread ROB.
    std::size_t wait_src = 0, wait_issue = 0, in_flight = 0, done = 0;
    for (SeqNum seq : main.rob) {
        DynInst *di = inst(seq);
        if (!di)
            continue;
        if (di->completed)
            ++done;
        else if (di->issued)
            ++in_flight;
        else if (di->pendingSrcs > 0)
            ++wait_src;
        else
            ++wait_issue;
    }
    std::snprintf(buf, sizeof(buf),
                  "\n  rob: %zu entries (%zu completed, %zu executing, "
                  "%zu waiting-srcs, %zu waiting-issue), window %u/%u",
                  main.rob.size(), done, in_flight, wait_src,
                  wait_issue, windowOccupancy_, cfg_.windowSize);
    d += buf;

    if (!main.rob.empty()) {
        if (DynInst *h = inst(main.rob.front())) {
            std::snprintf(
                buf, sizeof(buf),
                "\n  rob head: seq=%llu pc=0x%llx [%s] issued=%d "
                "completed=%d pending_srcs=%u eligible_at=%llu "
                "complete_at=%llu",
                static_cast<unsigned long long>(h->seq),
                static_cast<unsigned long long>(h->pc),
                h->si->disassemble().c_str(), int{h->issued},
                int{h->completed}, h->pendingSrcs,
                static_cast<unsigned long long>(h->eligibleAt),
                static_cast<unsigned long long>(h->completeAt));
            d += buf;
        }
    }

    std::snprintf(
        buf, sizeof(buf),
        "\n  mem: %zu outstanding fills, write buffer %zu/%u, "
        "retire_wb_stalls=%llu",
        hierarchy_.outstandingFills(cycle_),
        hierarchy_.writeBufferOccupancy(), cfg_.memory.writeBufEntries,
        static_cast<unsigned long long>(s_.retireWbStalls.value()));
    d += buf;

    unsigned live_slices = 0;
    for (ThreadId tid = 1; tid < threads_.size(); ++tid) {
        ThreadCtx &t = threads_[tid];
        if (!t.active)
            continue;
        ++live_slices;
        std::snprintf(buf, sizeof(buf),
                      "\n  slice tid=%u: idx=%d forkSeq=%llu rob=%zu "
                      "fetch_ended=%d iters=%u",
                      unsigned{tid}, t.sliceIdx,
                      static_cast<unsigned long long>(t.forkSeq),
                      t.rob.size(), int{t.fetchEnded}, t.loopIters);
        d += buf;
    }
    std::snprintf(buf, sizeof(buf),
                  "\n  threads: %u live slices, ready queue %zu, "
                  "correlator entries %zu",
                  live_slices, ready_.size(),
                  correlator_.liveEntries());
    d += buf;
    if (injector_.enabled()) {
        d += "\n  injection: ";
        std::string fired = injector_.firedSummary();
        d += fired.empty() ? "(armed, none fired)" : fired;
    }
    return d;
}

void
SmtCore::checkRetirement(const DynInst &di)
{
    // Everything the reference interpreter cross-checks comes from the
    // functional outcome computed on the correct path at fetch —
    // exactly the values this core's architectural state is built
    // from, so any internal corruption that reaches retirement is
    // caught here.
    check::RetireRecord rec;
    rec.seq = di.seq;
    rec.pc = di.pc;
    rec.wroteReg = di.fx.wroteReg;
    rec.reg = di.si->rc;
    rec.value = di.fx.value;
    rec.isStore = di.si->isStore();
    rec.storeAddr = di.fx.memAddr;
    rec.storeData = di.fx.value;
    rec.isCondBranch = di.si->isCondBranch();
    rec.taken = di.fx.taken;
    rec.nextPc = di.fx.nextPc;
    checker_->onRetire(rec);
}

void
SmtCore::releaseSliceThread(ThreadId tid)
{
    ThreadCtx &t = threads_[tid];
    SS_ASSERT(t.isSlice && t.rob.empty(), "slice thread still busy");
    t.active = false;

    if (cfg_.forkConfidenceGating && t.sliceIdx >= 0) {
        // Train the fork gate: did the main thread consume anything
        // this slice produced? Prefetch-only slices have no
        // consumption signal and stay ungated.
        const slice::SliceDescriptor &desc =
            sliceTable_.slice(static_cast<unsigned>(t.sliceIdx));
        if (!desc.pgis.empty()) {
            bool useful = correlator_.consumedCount(t.forkSeq) > 0;
            forkGate_[desc.forkPc].confidence.update(useful);
        }
    }

    correlator_.onSliceDone(t.forkSeq);
    ++s_.slicesCompleted;
    if (events_) [[unlikely]]
        events_->push(obs::EventKind::SliceEnd, tid, t.fetchPc,
                      t.forkSeq);
    SS_DTRACE(Slice, "end tid=", int{tid}, " forkSeq=", t.forkSeq,
              " cyc=", cycle_);
}

} // namespace specslice::core
