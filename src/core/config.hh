/**
 * @file
 * Core (pipeline) configuration, mirroring Table 1's "Front End" and
 * "Execution Core" rows for the 4-wide and 8-wide machines.
 */

#ifndef SPECSLICE_CORE_CONFIG_HH
#define SPECSLICE_CORE_CONFIG_HH

#include "branch/predictor_unit.hh"
#include "common/types.hh"
#include "mem/hierarchy.hh"
#include "slice/correlator.hh"
#include "slice/slice_table.hh"

namespace specslice::core
{

struct CoreConfig
{
    /** SMT hardware contexts (1 main + idle helpers). */
    unsigned numThreads = 4;

    unsigned fetchWidth = 4;
    unsigned issueWidth = 4;
    unsigned retireWidth = 4;
    unsigned windowSize = 128;

    /**
     * Fetch-to-issue-eligibility delay in cycles. With 1 cycle each for
     * issue and execute, the observed branch misprediction penalty is
     * frontEndDepth + 2, i.e. Table 1's 14-stage pipeline.
     */
    Cycle frontEndDepth = 12;

    /** Functional unit counts. */
    unsigned numIntAlu = 4;     ///< full complement of simple units
    unsigned numMemPorts = 2;   ///< load/store ports
    unsigned numComplex = 1;    ///< single complex integer unit
    unsigned numFp = 2;

    /**
     * ICOUNT fetch-policy bias toward the main thread (subtracted from
     * the main thread's in-flight count when choosing who fetches).
     */
    int mainThreadFetchBias = 16;

    /** Execute speculative slices as helper threads. */
    bool slicesEnabled = true;

    /**
     * Stop fetching a slice once every branch-queue entry it feeds has
     * been slice-killed (the main thread left the slice's valid
     * region, so no further prediction can be consumed). Reduces the
     * execution overhead Section 6.1 discusses; the ablation bench
     * turns it off.
     */
    bool terminateDeadSlices = true;

    /**
     * Use late predictions for early resolution (Section 5.3): when a
     * PGI executes after its branch was fetched but before it
     * resolves, a disagreeing outcome reverses the prediction and
     * redirects fetch. Off = late predictions are ignored.
     */
    bool lateReversalsEnabled = true;

    /**
     * Section 6.3 extension: gate forks with a confidence estimator
     * ("obvious future work is gating the fork using confidence").
     * A per-fork-PC saturating counter tracks whether recent slices
     * from that fork point produced predictions the main thread
     * consumed; low-confidence fork points stop forking. Off by
     * default (the paper's evaluation does not gate).
     */
    bool forkConfidenceGating = false;

    /**
     * Section 6.3 extension: "execution overhead could be eliminated
     * by having dedicated resources to execute the slice". When set,
     * helper threads fetch in parallel with the main thread (their own
     * fetch port), occupy a separate window, and do not count against
     * the issue width; only the cache ports remain shared. Off by
     * default (the paper's evaluation shares everything).
     */
    bool dedicatedSliceResources = false;

    branch::PredictorConfig predictor;
    mem::MemConfig memory;
    slice::PredictionCorrelator::Config correlator;
    slice::SliceTable::Limits sliceTable;

    /** Table 1's 4-wide machine. */
    static CoreConfig
    fourWide()
    {
        return CoreConfig{};
    }

    /** Table 1's 8-wide machine: 256-entry window, 4 load/store units. */
    static CoreConfig
    eightWide()
    {
        CoreConfig cfg;
        cfg.fetchWidth = 8;
        cfg.issueWidth = 8;
        cfg.retireWidth = 8;
        cfg.windowSize = 256;
        cfg.numIntAlu = 8;
        cfg.numMemPorts = 4;
        cfg.numFp = 4;
        return cfg;
    }
};

} // namespace specslice::core

#endif // SPECSLICE_CORE_CONFIG_HH
