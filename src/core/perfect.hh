/**
 * @file
 * Per-static-instruction "magic" perfection, used for Figure 1 (problem
 * instructions perfect vs all perfect) and Figure 11's constrained
 * limit study. A perfect branch is always predicted correctly at
 * fetch; a perfect load always completes with the L1 hit latency.
 */

#ifndef SPECSLICE_CORE_PERFECT_HH
#define SPECSLICE_CORE_PERFECT_HH

#include <unordered_set>

#include "common/types.hh"

namespace specslice::core
{

struct PerfectSpec
{
    bool allBranchesPerfect = false;
    bool allLoadsPerfect = false;
    std::unordered_set<Addr> branchPcs;  ///< per-static perfect branches
    std::unordered_set<Addr> loadPcs;    ///< per-static perfect loads

    bool
    branchPerfect(Addr pc) const
    {
        return allBranchesPerfect || branchPcs.count(pc) != 0;
    }

    bool
    loadPerfect(Addr pc) const
    {
        return allLoadsPerfect || loadPcs.count(pc) != 0;
    }

    bool
    any() const
    {
        return allBranchesPerfect || allLoadsPerfect ||
               !branchPcs.empty() || !loadPcs.empty();
    }
};

} // namespace specslice::core

#endif // SPECSLICE_CORE_PERFECT_HH
