/**
 * @file
 * The simultaneous multithreading out-of-order core (Table 1) extended
 * with the paper's slice-execution hardware (Section 4) and prediction
 * correlator (Section 5).
 *
 * Timing model: execute-at-fetch. Correct-path instructions execute
 * functionally in fetch order; the scheduler decides when results
 * become visible (same-cycle scheduling with a perfect load hit/miss
 * predictor, per Table 1). Wrong-path fetch walks the static code using
 * the predictors, consuming fetch bandwidth and window entries, but
 * never executes. Helper threads run slices: they own their registers
 * (copied at fork), share the L1D (prefetch effect), perform no stores,
 * and terminate on max-iteration count, faults, or SliceEnd.
 */

#ifndef SPECSLICE_CORE_SMT_CORE_HH
#define SPECSLICE_CORE_SMT_CORE_HH

#include <array>
#include <deque>
#include <optional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "arch/checkpoint.hh"
#include "arch/memimg.hh"
#include "arch/regfile.hh"
#include "common/bitutils.hh"
#include "branch/predictor_unit.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "core/config.hh"
#include "core/dyninst.hh"
#include "core/perfect.hh"
#include "fault/fault.hh"
#include "isa/program.hh"
#include "mem/hierarchy.hh"
#include "obs/events.hh"
#include "obs/interval.hh"
#include "slice/correlator.hh"
#include "slice/slice_table.hh"

namespace specslice::check
{
class RetireChecker;
}

namespace specslice::core
{

/** Per-static-instruction PDE profile hook (Section 2.2). */
struct PcProfile
{
    struct Counts
    {
        std::uint64_t branchExec = 0;
        std::uint64_t branchMispred = 0;
        std::uint64_t loadExec = 0;
        std::uint64_t loadMiss = 0;
        std::uint64_t storeExec = 0;
        std::uint64_t storeMiss = 0;
    };
    std::unordered_map<Addr, Counts> perPc;
};

/**
 * How a simulation run ended. Anything but Completed means the
 * reported stats cover a truncated or perturbed run; tools surface
 * the outcome in --stats/--json and exit non-zero unless explicitly
 * told a partial result is acceptable.
 */
enum class SimOutcome
{
    Completed,          ///< budget retired or program halted
    CycleLimit,         ///< hard cycle limit hit before the budget
    Watchdog,           ///< no forward progress for watchdogCycles
    CheckerDivergence,  ///< retirement checker latched a divergence
    Fault,              ///< run died with a SimError (tools only)
};

/** Stable lower-case name for JSON/stats output. */
const char *outcomeName(SimOutcome outcome);

/**
 * The hard cycle limit used when RunOptions::maxCycles is 0: 50 cycles
 * per budgeted instruction (an IPC floor of 0.02, far below anything a
 * live run produces) plus slack that scales with the budget so short
 * and long runs get the same proportional headroom. The old fixed
 * 100k-cycle slack starved runs whose warm-up dwarfed the measured
 * region; the floor keeps tiny smoke runs from getting a uselessly
 * tight limit.
 */
Cycle defaultCycleLimit(std::uint64_t max_main_instructions,
                        std::uint64_t warmup_instructions);

/** Options for one simulation run. */
struct RunOptions
{
    /** Stop after this many main-thread instructions retire. */
    std::uint64_t maxMainInstructions = 1'000'000;
    /** Hard cycle limit (deadlock guard). */
    Cycle maxCycles = 0;  ///< 0 = 50x instruction budget
    /**
     * Forward-progress watchdog: if the main thread retires nothing
     * for this many cycles the run terminates with SimOutcome::Watchdog
     * and a structured diagnosis in RunResult::diagnosis.
     * 0 = default (250k cycles, far beyond any legitimate stall).
     */
    Cycle watchdogCycles = 0;
    bool watchdogEnabled = true;
    /** Fault-injection plan for this run (empty = no injection). */
    fault::FaultPlan faults;
    /**
     * When set, the interval time-series is accumulated directly into
     * this caller-owned vector instead of run()-local storage, so a
     * crash-dump handler can flush the partial series even if run()
     * never returns. RunResult::intervals is still populated.
     */
    std::vector<obs::IntervalRecord> *intervalSink = nullptr;
    /** Run this many main-thread instructions before resetting stats
     *  (cache/predictor warm-up, Section 6). */
    std::uint64_t warmupInstructions = 0;
    PerfectSpec perfect;
    /** Collect the per-PC PDE profile (costs some time). */
    bool profile = false;
    /**
     * Record an interval stats time-series with this window length in
     * cycles (0 = off). Windows cover the measured region (recording
     * restarts at the warm-up stats reset); the final partial window
     * is included, so per-window deltas sum to the end-of-run
     * counters.
     */
    Cycle intervalCycles = 0;
    /**
     * Record typed pipeline/correlator events into this buffer (null
     * = off; see obs/events.hh for the event vocabulary). The buffer
     * must outlive the run; each run needs its own buffer.
     */
    obs::EventBuffer *events = nullptr;
    /**
     * Differential-correctness checker fed at every main-thread
     * retirement (null = off). The checker must start from the same
     * entry PC and initial memory image as this run and must outlive
     * it; each run needs its own instance. sim::Simulator constructs
     * one per run when the sim-level `check` flag is set. Ignored in
     * SS_CHECK_DISABLED builds (the hook is compiled out).
     */
    check::RetireChecker *checker = nullptr;

    // ---- sim-level checking knobs (interpreted by sim::Simulator,
    //      which owns checker construction per run) ----
    /** Co-simulate with the retirement checker (also forced on for
     *  every run by SS_CHECK=1 in the environment). */
    bool check = false;
    /** SS_FATAL with the first-divergence report the moment a
     *  divergence is detected. When false the divergence is latched
     *  into RunResult instead (used by the injected-fault tests). */
    bool checkFatal = true;
    /** Mutation-style self-test: corrupt the Nth (1-based) observed
     *  register writeback / store before comparison. 0 = off. */
    std::uint64_t checkInjectRegFault = 0;
    std::uint64_t checkInjectStoreFault = 0;

    // ---- architectural-state injection (checkpoint/sampled runs;
    //      sim::Simulator fills these from a FastForward snapshot) ----
    /** Start the main thread's registers from this file instead of
     *  zeros. Must outlive the run. */
    const arch::RegFile *initialRegs = nullptr;
    /** Replay these branch outcomes into the predictor before the
     *  first fetch, so a mid-program start doesn't begin with a cold
     *  front end. Must outlive the run. */
    const std::vector<arch::BranchWarmthRecord> *branchWarmth = nullptr;
    /** Replay these data accesses into the cache hierarchy before the
     *  first fetch (oldest first), so a mid-program start doesn't
     *  begin with a cold L1D/L2. Must outlive the run. */
    const std::vector<arch::MemWarmthRecord> *memWarmth = nullptr;
    /** Replay these executed instruction addresses into the I-side of
     *  the hierarchy before the first fetch (oldest first), so a
     *  mid-program start doesn't begin with a cold L1I. Must outlive
     *  the run. */
    const std::vector<Addr> *instWarmth = nullptr;

    // ---- sampling knobs (interpreted by sim::Simulator::run, which
    //      owns the fast-forward engine and region orchestration) ----
    /**
     * Functionally fast-forward to this absolute instruction count
     * (from the workload entry) before the first timing region.
     * Warm-up (warmupInstructions) and measurement
     * (maxMainInstructions) then run in detail from that point.
     */
    std::uint64_t fastForwardInstructions = 0;
    /**
     * Number of detailed timing regions to sample and aggregate
     * (0 or 1 = a single region). Each region runs warm-up + measure
     * instructions on a snapshot of the architectural state; between
     * regions the fast-forward engine advances sampleStride
     * instructions along the pristine architectural stream.
     */
    unsigned sampleRegions = 0;
    /** Instructions between region starts (0 = contiguous: warm-up +
     *  measure, i.e. the next region starts where this one ended). */
    std::uint64_t sampleStride = 0;
    /** Replay fast-forward branch history into each region's predictor
     *  (disable to measure cold-start bias). */
    bool warmPredictors = true;
    /** Replay fast-forward data accesses into each region's cache
     *  hierarchy (disable to measure cold-cache bias). */
    bool warmCaches = true;
    /** Replay fast-forward instruction lines into each region's L1I
     *  (--cold-icache disables it, the i-side analogue of the two
     *  flags above). */
    bool warmInstCache = true;
    /** Load the starting architectural state from this checkpoint file
     *  ("" = start at the workload entry). */
    std::string restoreCheckpoint;
    /** After fast-forwarding, save the pre-region architectural state
     *  here ("" = don't). */
    std::string saveCheckpoint;

    // ---- trace-driven runs (interpreted by the callers that load
    //      the workload: trace::loadTraceWorkload rebuilds the
    //      embedded program/memory/slices and the simulator runs it
    //      like any other workload) ----
    /**
     * The sstr trace file this run's workload was reconstructed from
     * ("" = a builder-made workload). The core never reads it; it is
     * run *identity*: sim::runCacheKey folds the file's content hash
     * into the cache key, so a rewritten trace invalidates cached
     * results by construction and a trace-mode run never aliases the
     * equivalent workload-mode run.
     */
    std::string traceFile;
};

/** Aggregated results of a run. */
struct RunResult
{
    /** How the run ended (sim::Simulator upgrades Completed to
     *  CheckerDivergence when a divergence was latched). */
    SimOutcome outcome = SimOutcome::Completed;
    /** Watchdog stall diagnosis (empty unless outcome == Watchdog). */
    std::string diagnosis;
    /** Total injected-fault firings (0 when injection is off). */
    std::uint64_t faultsInjected = 0;
    /** Per-site firing counts, "site=n,site=n" ("" when none). */
    std::string faultSummary;
    Cycle cycles = 0;
    std::uint64_t mainRetired = 0;
    std::uint64_t mainFetched = 0;       ///< correct + wrong path
    std::uint64_t mainFetchedWrongPath = 0;
    std::uint64_t sliceFetched = 0;
    std::uint64_t sliceRetired = 0;      ///< slice insts that executed
    std::uint64_t condBranches = 0;      ///< main, resolved
    std::uint64_t mispredictions = 0;    ///< main, resolved wrong
    std::uint64_t loads = 0;             ///< main thread loads issued
    std::uint64_t l1dMissesMain = 0;
    std::uint64_t coveredMisses = 0;     ///< via slice prefetch
    std::uint64_t slicePrefetches = 0;   ///< slice loads executed
    std::uint64_t forks = 0;
    std::uint64_t forksSquashed = 0;
    std::uint64_t forksIgnored = 0;
    std::uint64_t predictionsGenerated = 0;
    std::uint64_t correlatorUsed = 0;    ///< overrides consumed
    std::uint64_t correlatorWrong = 0;   ///< overrides that mispredicted
    std::uint64_t latePredictions = 0;   ///< matched while Empty
    std::uint64_t lateReversals = 0;     ///< early resolutions performed
    StatGroup detail;                    ///< everything else
    /** Interval time-series (empty unless RunOptions.intervalCycles). */
    std::vector<obs::IntervalRecord> intervals;

    // Sampling provenance (filled by sim::Simulator for sampled runs).
    /** Instructions skipped functionally before the first region. */
    std::uint64_t fastForwarded = 0;
    /** Timing regions aggregated into this result (0 = unsampled). */
    unsigned sampledRegions = 0;

    // Observability-only wall-clock phase breakdown and trace
    // bookkeeping. NEVER serialized into result documents (served
    // docs must stay byte-identical to `specslice_run --json
    // --no-wall` and deterministic); the sweep service feeds them
    // into its latency histograms.
    /** Wall seconds spent fast-forwarding (sampled runs only). */
    double wallFastForwardSeconds = 0.0;
    /** Wall seconds from run start to the warm-up stats reset. */
    double wallWarmupSeconds = 0.0;
    /** Wall seconds from the stats reset to run end. */
    double wallMeasureSeconds = 0.0;
    /** Cycles simulated including warm-up (RunResult::cycles covers
     *  the measured region only); used to stitch multi-run traces. */
    Cycle totalCycles = 0;

    // Retirement-checker outcome (RunOptions.check runs only).
    /** Main-thread retirements the checker compared (warm-up included;
     *  0 when checking was off or compiled out). */
    std::uint64_t checkedRetired = 0;
    /** A divergence was latched (only reachable with checkFatal off —
     *  fatal mode aborts at the divergence point). */
    bool checkDiverged = false;
    /** First-divergence report (empty unless checkDiverged). */
    std::string checkReport;

    double
    ipc() const
    {
        return cycles ? static_cast<double>(mainRetired) /
                            static_cast<double>(cycles)
                      : 0.0;
    }

    PcProfile profile;
};

class SmtCore
{
  public:
    SmtCore(const CoreConfig &cfg, const isa::Program &program,
            arch::MemoryImage &mem);

    /** Load a slice into the slice/PGI tables. */
    void loadSlice(const slice::SliceDescriptor &desc);

    /** Run the main thread from entry_pc until halt or limits. */
    RunResult run(Addr entry_pc, const RunOptions &opts);

  private:
    // ---- per-thread state ----
    struct ThreadCtx
    {
        bool active = false;
        bool isSlice = false;
        Addr fetchPc = invalidAddr;
        Addr funcPc = invalidAddr;      ///< next correct-path PC
        Addr fetchLine = invalidAddr;   ///< last I-cache line touched
        bool onWrongPath = false;
        Cycle fetchStallUntil = 0;
        bool fetchEnded = false;        ///< halt/terminate: drain only
        arch::RegFile regs;
        std::deque<SeqNum> rob;         ///< fetch order, oldest first
        std::array<SeqNum, isa::numRegs> lastWriter{};
        unsigned icount = 0;            ///< in-flight count (ICOUNT)
        // Slice-thread fields.
        int sliceIdx = -1;
        SeqNum forkSeq = invalidSeqNum;
        unsigned loopIters = 0;
        /** slice.kill injection: cycle at which to kill (0 = none). */
        Cycle killAtCycle = 0;
    };

    struct StoreUndo
    {
        SeqNum seq;
        Addr addr;
        unsigned size;
        std::uint64_t oldValue;
    };

    // ---- pipeline stages (one file per stage) ----
    void fetchStage();
    void fetchFrom(ThreadId tid);
    bool fetchOne(ThreadCtx &t, ThreadId tid, unsigned &fetched);
    void issueStage();
    void completeStage();
    void retireStage();

    // ---- helpers ----
    ThreadId pickFetchThread(bool slices_only = false) const;
    /** The window-occupancy counter an instruction charges against
     *  (helper threads get their own window with dedicated
     *  resources, Section 6.3). */
    unsigned &windowCounterFor(bool slice_thread);
    DynInst *inst(SeqNum seq);
    void setupDependencies(DynInst &di, ThreadCtx &t);
    void wakeupDependents(DynInst &di);
    void resolveBranch(DynInst &di);
    /** Timed D-cache access at issue. @return completion latency. */
    Cycle issueMemAccess(DynInst &di);
    /** Squash all instructions of thread tid younger than seq. */
    void squashThread(ThreadId tid, SeqNum younger_than,
                      bool undo_functional);
    void redirectFetch(ThreadId tid, Addr pc, Cycle resume_at);
    void forkSlice(DynInst &fork_inst, int slice_idx);
    /** Rewind a slice load's value to memory as of the fork point. */
    void adjustSliceLoad(ThreadCtx &t, DynInst &di);
    /** Count a taken slice back-edge. @return true if limit reached. */
    bool countSliceIteration(ThreadCtx &t, Addr pc);
    void terminateSliceFetch(ThreadCtx &t, ThreadId tid);
    void releaseSliceThread(ThreadId tid);
    void handleLateResult(
        const slice::PredictionCorrelator::LateResult &late);
    SeqNum oldestInFlight() const;
    /** Kill slice threads whose injected killAtCycle has passed. */
    void applyInjectedSliceKills();
    /** Structured no-forward-progress report for the watchdog. */
    std::string diagnoseStall(Cycle stalled_for);
    void resetStats();
    void recordBranchProfile(const DynInst &di, bool mispredicted);
    /** Report one main-thread retirement to the attached checker. */
    void checkRetirement(const DynInst &di);

    // ---- observability ----
    /** Baselines for the interval time-series (active when
     *  RunOptions.intervalCycles > 0). */
    struct IntervalState
    {
        StatGroup::Snapshot core, mem, corr;
        std::uint64_t retiredBase = 0;
        Cycle windowStart = 0;
        Cycle nextBoundary = 0;
        std::uint64_t index = 0;
    };
    /** (Re)start interval recording at the current cycle. */
    void restartIntervals(IntervalState &st, Cycle interval_cycles);
    /** Close the current window and append its record. */
    void captureInterval(IntervalState &st, Cycle interval_cycles,
                         std::vector<obs::IntervalRecord> &out);

    // ---- configuration & structural state ----
    CoreConfig cfg_;
    const isa::Program &program_;
    arch::MemoryImage &mem_;
    mem::MemoryHierarchy hierarchy_;
    branch::BranchPredictorUnit bpu_;
    slice::SliceTable sliceTable_;
    slice::PredictionCorrelator correlator_;
    PerfectSpec perfect_;
    /** Per-run fault-injection state (inactive when the plan is
     *  empty; pointers handed to the units only when enabled). */
    fault::Injector injector_;
    bool profileEnabled_ = false;
    /** Structured-event sink for this run (null = off). */
    obs::EventBuffer *events_ = nullptr;
    /** Retirement-time architectural checker (null = off). */
    check::RetireChecker *checker_ = nullptr;

    /**
     * The in-flight instruction window, keyed by VN#. Sequence
     * numbers are handed out densely and instructions are inserted in
     * VN# order, so the live range [base, base + slots) stays within
     * a few window sizes; a deque of optionals gives O(1) lookup with
     * no hashing and no per-instruction node allocation. Deque
     * end-operations keep references to other elements stable, same
     * as the node-based map this replaces.
     */
    class InFlightWindow
    {
      public:
        DynInst *
        find(SeqNum seq)
        {
            if (seq < base_ || seq - base_ >= slots_.size())
                return nullptr;
            auto &slot = slots_[seq - base_];
            return slot ? &*slot : nullptr;
        }

        /** Insert seq's instruction; seq must be newer than all
         *  previous insertions. */
        DynInst &
        emplace(SeqNum seq, DynInst &&di)
        {
            if (slots_.empty())
                base_ = seq;
            while (base_ + slots_.size() < seq)
                slots_.emplace_back(std::nullopt);
            return *slots_.emplace_back(std::move(di));
        }

        void
        erase(SeqNum seq)
        {
            if (seq < base_ || seq - base_ >= slots_.size())
                return;
            slots_[seq - base_].reset();
            while (!slots_.empty() && !slots_.front()) {
                slots_.pop_front();
                ++base_;
            }
        }

      private:
        SeqNum base_ = 0;
        std::deque<std::optional<DynInst>> slots_;
    };

    // ---- dynamic state ----
    Cycle cycle_ = 0;
    SeqNum nextSeq_ = 1;
    std::vector<ThreadCtx> threads_;
    InFlightWindow inFlight_;
    unsigned windowOccupancy_ = 0;
    /** Separate helper-thread window (dedicated-resources mode). */
    unsigned sliceWindowOccupancy_ = 0;
    /** Per-fork-PC usefulness state (fork-confidence gating). */
    struct ForkGate
    {
        SatCounter confidence{3, 7};  ///< start confident
        std::uint8_t probe = 0;       ///< periodic re-probe counter
    };
    std::unordered_map<Addr, ForkGate> forkGate_;
    /**
     * Ready-to-issue instructions. Insertions (fetch and wakeup) are
     * appended; issueStage sorts the appended tail once per cycle and
     * drains in VN# order — identical selection order to the ordered
     * set this replaces, without per-insert node allocation or
     * rebalancing. Squashed entries are dropped lazily (their VN# no
     * longer resolves in the in-flight window).
     */
    std::vector<SeqNum> ready_;
    /** Prefix of ready_ already in sorted order. */
    std::size_t readySortedPrefix_ = 0;
    /** Scratch for the per-cycle drain (kept to reuse capacity). */
    std::vector<SeqNum> readyKept_;
    using Event = std::pair<Cycle, SeqNum>;
    std::priority_queue<Event, std::vector<Event>, std::greater<Event>>
        completions_;
    std::deque<StoreUndo> storeUndoLog_;
    std::uint64_t mainRetired_ = 0;
    bool mainHalted_ = false;

    // ---- statistics ----
    /** Handles into stats_, registered once at construction so the
     *  per-instruction pipeline loops never do string lookups. */
    struct Handles
    {
        explicit Handles(StatGroup &g);
        // fetch stage
        Stat &fetchWindowStalls;
        Stat &icacheStallCycles;
        Stat &indirectFetchStalls;
        Stat &sliceFaults;
        Stat &sliceFetched;
        Stat &mainFetched;
        Stat &mainFetchedWrongpath;
        Stat &forksGated;
        Stat &forksIgnored;
        Stat &forks;
        Stat &sliceLoadsForkAdjusted;
        // issue/memory
        Stat &mainStores;
        Stat &mainStoreMisses;
        Stat &slicePrefetches;
        Stat &mainLoads;
        Stat &mainLoadMisses;
        Stat &mainCoveredMisses;
        // resolve/squash
        Stat &condBranches;
        Stat &mispredictions;
        Stat &correlatorUsed;
        Stat &correlatorWrong;
        Stat &indirectBranches;
        Stat &indirectMispredictions;
        Stat &returns;
        Stat &returnMispredictions;
        Stat &sliceLocalSquashes;
        Stat &forksSquashed;
        Stat &sliceSquashedInsts;
        Stat &mainSquashedInsts;
        Stat &lateAgreements;
        Stat &lateReversals;
        // retire
        Stat &retireWbStalls;
        Stat &sliceRetired;
        Stat &slicesTerminatedDead;
        Stat &slicesCompleted;
    };

    StatGroup stats_;
    Handles s_;
    PcProfile profile_;
};

} // namespace specslice::core

#endif // SPECSLICE_CORE_SMT_CORE_HH
