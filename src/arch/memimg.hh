/**
 * @file
 * A sparse, paged functional memory image shared by the main thread and
 * helper threads. Page zero is never mapped, so null-pointer
 * dereferences fault — the paper relies on this to terminate slices
 * that walk off the end of linked structures ("linked list traversals
 * will automatically terminate when they dereference a null pointer",
 * Section 3.2).
 */

#ifndef SPECSLICE_ARCH_MEMIMG_HH
#define SPECSLICE_ARCH_MEMIMG_HH

#include <array>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/types.hh"

namespace specslice::arch
{

/** Byte-addressed sparse memory. Reads of unwritten addresses are 0. */
class MemoryImage
{
  public:
    static constexpr unsigned pageShift = 12;
    static constexpr std::size_t pageSize = std::size_t{1} << pageShift;

    /** @return true if addr lives on the (always unmapped) null page. */
    static bool
    faults(Addr addr)
    {
        return addr < pageSize;
    }

    /** Read n bytes (n in {1,2,4,8}), little-endian. */
    std::uint64_t read(Addr addr, unsigned n) const;

    /** Write n bytes (n in {1,2,4,8}), little-endian. */
    void write(Addr addr, std::uint64_t value, unsigned n);

    std::uint64_t readQ(Addr addr) const { return read(addr, 8); }
    std::uint32_t
    readL(Addr addr) const
    {
        return static_cast<std::uint32_t>(read(addr, 4));
    }
    std::uint8_t
    readB(Addr addr) const
    {
        return static_cast<std::uint8_t>(read(addr, 1));
    }

    void writeQ(Addr addr, std::uint64_t v) { write(addr, v, 8); }
    void writeL(Addr addr, std::uint32_t v) { write(addr, v, 4); }
    void writeB(Addr addr, std::uint8_t v) { write(addr, v, 1); }

    /** Store an IEEE double's bit pattern. */
    void writeF(Addr addr, double v);
    /** Load an IEEE double from its bit pattern. */
    double readF(Addr addr) const;

    /** Number of pages currently allocated. */
    std::size_t pageCount() const { return pages_.size(); }

    /**
     * Deep copy of the image (fast-forward region snapshots, parallel
     * sampled runs). Explicit rather than a copy constructor so the
     * expensive page duplication never happens by accident.
     */
    MemoryImage clone() const;

    /** Allocated page numbers, sorted (checkpoint serialization). */
    std::vector<Addr> pageNumbers() const;

    /** Raw bytes of an allocated page (null if not allocated). */
    const std::uint8_t *pageData(Addr page_num) const;

    /** Install a whole page's bytes (checkpoint restore). */
    void importPage(Addr page_num, const std::uint8_t *data);

    /**
     * Order-independent FNV-1a hash of the written contents. Pages
     * that are entirely zero are skipped, so an image where a page was
     * allocated but only ever held zeros hashes identically to one
     * where it was never touched (reads of absent pages return zero —
     * the two are architecturally indistinguishable).
     */
    std::uint64_t contentHash() const;

  private:
    using Page = std::array<std::uint8_t, pageSize>;

    const Page *findPage(Addr addr) const;
    Page &touchPage(Addr addr);

    std::unordered_map<Addr, std::unique_ptr<Page>> pages_;

    /**
     * One-entry translation cache. The simulated working sets walk
     * small regions, so consecutive accesses overwhelmingly land on
     * the same page; caching the last page skips the hash lookup.
     * Pages are never deallocated, so the pointer cannot dangle.
     */
    mutable Addr cachedPageNum_ = ~Addr{0};
    mutable Page *cachedPage_ = nullptr;
};

} // namespace specslice::arch

#endif // SPECSLICE_ARCH_MEMIMG_HH
