/**
 * @file
 * An architectural register file: 64 x 64-bit registers with r63
 * hardwired to zero. Each hardware thread context owns one ("a slice
 * has its own registers", Section 1).
 */

#ifndef SPECSLICE_ARCH_REGFILE_HH
#define SPECSLICE_ARCH_REGFILE_HH

#include <array>
#include <cstdint>
#include <cstring>

#include "common/types.hh"
#include "isa/opcodes.hh"

namespace specslice::arch
{

class RegFile
{
  public:
    RegFile() { regs_.fill(0); }

    std::uint64_t
    read(RegIndex r) const
    {
        return r == isa::regZero ? 0 : regs_[r];
    }

    void
    write(RegIndex r, std::uint64_t value)
    {
        if (r != isa::regZero)
            regs_[r] = value;
    }

    /** Read a register as an IEEE double bit pattern. */
    double
    readF(RegIndex r) const
    {
        std::uint64_t bits_ = read(r);
        double v;
        std::memcpy(&v, &bits_, sizeof(v));
        return v;
    }

    /** Write an IEEE double's bit pattern to a register. */
    void
    writeF(RegIndex r, double v)
    {
        std::uint64_t bits_;
        std::memcpy(&bits_, &v, sizeof(bits_));
        write(r, bits_);
    }

    void reset() { regs_.fill(0); }

  private:
    std::array<std::uint64_t, isa::numRegs> regs_;
};

} // namespace specslice::arch

#endif // SPECSLICE_ARCH_REGFILE_HH
