/**
 * @file
 * The functional fast-forward engine: a pre-decoded, threaded-dispatch
 * interpreter for the zsr ISA. It executes the same architectural
 * semantics as arch::execute (and is regression-tested bit-identical
 * to arch::trace), but skips per-step ExecResult construction, trait
 * lookups, and program.fetch hashing by resolving every static
 * instruction to a dense decode record once up front. This is the raw
 * speed lever the paper-scale experiments sit on: the timing core
 * retires ~0.5M insts/sec, the fast-forward engine targets >=50M, so
 * 100M-instruction regions become reachable by skipping to them
 * functionally and simulating only sampled windows in detail.
 *
 * While fast-forwarding, the engine records recent conditional and
 * indirect branch outcomes into a bounded ring; a timing run started
 * from the resulting state replays them into its branch predictor so
 * the sampled region does not start with an artificially cold front
 * end. A second, deeper ring records recent data-memory accesses for
 * the same reason: replaying them into the cache hierarchy installs
 * the working set a real run would have resident, which matters far
 * more than branch state (a cold 2MB L2 takes hundreds of thousands
 * of instructions to warm naturally). (The return-address stack and
 * the slice-prediction correlator are deliberately NOT warmed: both
 * drain/refill within tens of instructions, and region warm-up covers
 * them.)
 */

#ifndef SPECSLICE_ARCH_FASTFWD_HH
#define SPECSLICE_ARCH_FASTFWD_HH

#include <cstdint>
#include <vector>

#include "arch/checkpoint.hh"
#include "arch/memimg.hh"
#include "arch/regfile.hh"
#include "common/types.hh"
#include "isa/program.hh"

namespace specslice::arch
{

/** Why the last advance() stopped. */
enum class FfStop
{
    Budget,      ///< instruction budget exhausted, program still live
    Halted,      ///< executed a Halt
    Fault,       ///< architectural fault (null-page access)
    UnmappedPc,  ///< control flow left the program image
};

/** Stable lower-case name for diagnostics. */
const char *ffStopName(FfStop stop);

class FastForward
{
  public:
    /** Branch outcomes retained for predictor warm-up (power of 2). */
    static constexpr std::size_t warmthDepth = 4096;

    /** Data accesses retained for cache warm-up (power of 2). Sized
     *  to cover the 2MB L2: 128K accesses touch at least as many
     *  lines as the hierarchy holds unless the stream is pathological
     *  re-reference of one line. */
    static constexpr std::size_t memWarmthDepth = std::size_t{1} << 17;

    /** Executed-instruction lines retained for I-cache warm-up
     *  (power of 2). 4096 distinct 64-byte lines cover 256KB of code,
     *  4x the 64KB L1I. */
    static constexpr std::size_t instWarmthDepth = 4096;

    /** I-side recording granularity. Fixed rather than taken from
     *  MemConfig: the replay consumer maps the recorded PCs onto its
     *  own line size, so this only controls dedup density. */
    static constexpr Addr instLineBytes = 64;

    /** Pre-decodes the program (which must outlive the engine). */
    explicit FastForward(const isa::Program &program);

    /** (Re)start from entry_pc with zeroed registers and empty memory.
     *  The caller then populates mem() with the workload's image. */
    void reset(Addr entry_pc);

    /**
     * Execute up to max_insts further instructions.
     * @return why execution stopped. Halted/Fault/UnmappedPc are
     *         sticky: further advances return the same stop without
     *         executing anything.
     */
    FfStop advance(std::uint64_t max_insts);

    /** Advance until executed() == target_count (no-op if already
     *  there or past). */
    FfStop advanceTo(std::uint64_t target_count);

    /** Instructions executed since reset()/restore(). */
    std::uint64_t executed() const { return executed_; }

    /** Next PC (Budget), or the halting/faulting/unmapped PC. */
    Addr pc() const { return pc_; }

    /** True until a sticky stop (halt/fault/unmapped) is hit. */
    bool runnable() const { return last_ == FfStop::Budget; }

    FfStop lastStop() const { return last_; }

    MemoryImage &mem() { return mem_; }
    const MemoryImage &mem() const { return mem_; }
    const RegFile &regs() const { return regs_; }

    /** The retained branch-outcome log, oldest first. */
    std::vector<BranchWarmthRecord> warmth() const;

    /** The retained data-access log, oldest first. */
    std::vector<MemWarmthRecord> memWarmth() const;

    /** The retained executed-instruction-line log (one PC per line
     *  transition), oldest first. */
    std::vector<Addr> instWarmth() const;

    /** Snapshot the complete architectural state. */
    Checkpoint makeCheckpoint() const;

    /**
     * Resume from a checkpoint. Fatal if the checkpoint's program
     * fingerprint does not match this engine's program — restoring
     * into the wrong workload must never proceed silently.
     */
    void restore(const Checkpoint &ckpt);

    /** This program's fingerprint (cached at construction). */
    std::uint64_t programFingerprint() const { return fingerprint_; }

  private:
    /** Dense decode record; 16 bytes so four fit a cache line. */
    struct Decoded
    {
        std::int32_t imm = 0;
        /** Flat index of the static branch target (badIdx = the
         *  target lies outside the decode array). */
        std::uint32_t targetIdx = 0;
        std::uint16_t op = 0;  ///< isa::Opcode, or invalidOp in gaps
        std::uint8_t ra = 0, rb = 0, rc = 0;
        std::uint8_t pad = 0;
    };
    static constexpr std::uint32_t badIdx = ~std::uint32_t{0};
    static constexpr std::uint16_t invalidOp =
        static_cast<std::uint16_t>(isa::Opcode::NumOpcodes);

    void predecode();
    /** Flat index for pc, or badIdx if outside/misaligned. */
    std::uint32_t idxOf(Addr pc) const;
    Addr pcOf(std::uint32_t idx) const;
    /** Static transfer target of the instruction at idx (rare path:
     *  only consulted when the target lies outside the decode array). */
    Addr staticTargetOf(std::uint32_t idx) const;
    /** Interpreter core over the pre-decoded array. */
    FfStop run(std::uint64_t max_insts);
    /** program.fetch + arch::execute fallback for sparse programs
     *  whose span exceeds the decode-array limit. */
    FfStop runSparse(std::uint64_t max_insts);
    void recordCond(Addr pc, bool taken);
    void recordIndirect(Addr pc, Addr target);

    /** Hot path (every load/store): keep inline. */
    void
    recordMem(Addr addr, bool is_store)
    {
        MemWarmthRecord &m =
            memRing_[memCount_++ & (memWarmthDepth - 1)];
        m.addr = addr;
        m.isStore = is_store;
    }

    /** Hot path (every instruction): one shift + compare when the
     *  fetch stream stays on its current line, a ring store when it
     *  leaves it. */
    void
    recordInstLine(Addr pc)
    {
        const Addr line = pc / instLineBytes;
        if (line == lastInstLine_)
            return;
        lastInstLine_ = line;
        instRing_[instCount_++ & (instWarmthDepth - 1)] = pc;
    }

    const isa::Program &program_;
    std::uint64_t fingerprint_;
    std::vector<Decoded> ops_;
    Addr decodeBase_ = 0;

    // Architectural state.
    RegFile regs_;
    MemoryImage mem_;
    Addr pc_ = invalidAddr;
    std::uint64_t executed_ = 0;
    FfStop last_ = FfStop::Budget;

    // Branch-outcome ring (bounded; index masked by warmthDepth-1).
    std::vector<BranchWarmthRecord> warmthRing_;
    std::uint64_t warmthCount_ = 0;

    // Data-access ring (bounded; index masked by memWarmthDepth-1).
    std::vector<MemWarmthRecord> memRing_;
    std::uint64_t memCount_ = 0;

    // Instruction-line ring (bounded; masked by instWarmthDepth-1).
    std::vector<Addr> instRing_;
    std::uint64_t instCount_ = 0;
    Addr lastInstLine_ = invalidAddr;
};

} // namespace specslice::arch

#endif // SPECSLICE_ARCH_FASTFWD_HH
