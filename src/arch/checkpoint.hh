/**
 * @file
 * Versioned architectural checkpoints: everything needed to resume a
 * functionally fast-forwarded program — memory pages, register file,
 * PC, instruction count — plus a bounded log of recent branch outcomes
 * so a timing run started from the checkpoint can warm its branch
 * predictor the same way an uninterrupted run would have.
 *
 * The on-disk format is binary, little-endian regardless of host, and
 * carries a magic/version header plus a fingerprint of the static
 * program image, so a checkpoint can never be silently restored into
 * the wrong workload (or the right workload built at a different
 * scale/seed).
 */

#ifndef SPECSLICE_ARCH_CHECKPOINT_HH
#define SPECSLICE_ARCH_CHECKPOINT_HH

#include <cstdint>
#include <istream>
#include <optional>
#include <ostream>
#include <string>
#include <vector>

#include "arch/memimg.hh"
#include "arch/regfile.hh"
#include "common/types.hh"
#include "isa/program.hh"

namespace specslice::arch
{

/** On-disk format version; bump on any layout change.
 *  v2: appended the memory-access warmth log (cache warm-up replay).
 *  v3: appended the instruction-line warmth log (I-cache warm-up
 *      replay) after the page section. v2 files still load — they
 *      simply carry no I-side warmth, matching their old behavior. */
constexpr std::uint32_t checkpointVersion = 3;

/** Oldest on-disk version loadCheckpoint still accepts. */
constexpr std::uint32_t minCheckpointVersion = 2;

/** Which predictor a warmth record trains. */
enum class WarmthKind : std::uint8_t
{
    CondBranch = 0,  ///< (pc, taken)
    Indirect = 1,    ///< (pc, target)
};

/** One branch outcome recorded during fast-forward for predictor
 *  warm-up replay. */
struct BranchWarmthRecord
{
    Addr pc = 0;
    Addr target = invalidAddr;  ///< Indirect records only
    WarmthKind kind = WarmthKind::CondBranch;
    bool taken = false;         ///< CondBranch records only
};

/** One data-memory access recorded during fast-forward for cache
 *  warm-up replay (line granularity is the consumer's business). */
struct MemWarmthRecord
{
    Addr addr = 0;
    bool isStore = false;
};

/** A complete architectural snapshot at an instruction boundary. */
struct Checkpoint
{
    std::uint32_t version = checkpointVersion;
    /** Fingerprint of the program this snapshot belongs to. */
    std::uint64_t programFingerprint = 0;
    /** Instructions executed from the entry point to this snapshot. */
    std::uint64_t instCount = 0;
    /** Next PC to execute. */
    Addr pc = invalidAddr;
    RegFile regs;
    /** Recent branch outcomes, oldest first (bounded ring). */
    std::vector<BranchWarmthRecord> warmth;
    /** Recent data accesses, oldest first (bounded ring). */
    std::vector<MemWarmthRecord> memWarmth;
    /** Recent executed instruction addresses, line-deduplicated,
     *  oldest first (bounded ring; v3+, empty when loaded from v2). */
    std::vector<Addr> instWarmth;
    MemoryImage mem;
};

/**
 * FNV-1a over every section's base address and instruction encoding.
 * Identifies the static code image: two workloads (or two scales of
 * one workload) collide only if their code is byte-identical.
 */
std::uint64_t fingerprintProgram(const isa::Program &program);

/** Serialize to a stream. @return false on write failure. */
bool saveCheckpoint(const Checkpoint &c, std::ostream &os);

/** Serialize to a file. @return false and set error on failure. */
bool saveCheckpointFile(const Checkpoint &c, const std::string &path,
                        std::string &error);

/**
 * Parse a checkpoint. Returns nullopt and sets error on truncation,
 * bad magic, or an unsupported version. Fingerprint validation against
 * a concrete program is the caller's job (restoreCheckpoint /
 * FastForward::restore).
 */
std::optional<Checkpoint> loadCheckpoint(std::istream &is,
                                         std::string &error);

/** Load from a file. @return nullopt and set error on failure. */
std::optional<Checkpoint> loadCheckpointFile(const std::string &path,
                                             std::string &error);

} // namespace specslice::arch

#endif // SPECSLICE_ARCH_CHECKPOINT_HH
