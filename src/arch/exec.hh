/**
 * @file
 * The functional executor: computes the architectural effect of one zsr
 * instruction. The timing model (src/core) decides *when* results
 * become visible; this module decides *what* they are.
 */

#ifndef SPECSLICE_ARCH_EXEC_HH
#define SPECSLICE_ARCH_EXEC_HH

#include "arch/memimg.hh"
#include "arch/regfile.hh"
#include "common/types.hh"
#include "isa/instruction.hh"

namespace specslice::arch
{

/** Outcome of functionally executing one instruction. */
struct ExecResult
{
    Addr nextPc = invalidAddr;   ///< PC of the next instruction
    bool taken = false;          ///< control transfer taken?
    Addr memAddr = invalidAddr;  ///< effective address for mem ops
    /** Value written to rc (wroteReg), or the data a store put in
     *  memory, truncated to the store width (isStore() ops). The
     *  retirement checker compares both against its reference. */
    std::uint64_t value = 0;
    bool wroteReg = false;       ///< rc was written
    bool fault = false;          ///< null-page access (terminates slices)
    bool halted = false;         ///< Halt executed
    bool sliceEnded = false;     ///< SliceEnd executed
};

/**
 * Functionally execute inst at pc against regs and mem.
 *
 * @param allow_stores if false, store opcodes fault (slices "perform no
 *        stores"; the assembler-level slice checker also rejects them,
 *        this is defense in depth).
 */
ExecResult execute(const isa::Instruction &inst, Addr pc, RegFile &regs,
                   MemoryImage &mem, bool allow_stores = true);

} // namespace specslice::arch

#endif // SPECSLICE_ARCH_EXEC_HH
