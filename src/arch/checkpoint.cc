#include "arch/checkpoint.hh"

#include <cstring>
#include <fstream>

#include "common/logging.hh"

namespace specslice::arch
{

namespace
{

constexpr char magic[8] = {'S', 'S', 'C', 'K', 'P', 'T', '0', '\n'};

// All scalars are serialized little-endian byte by byte, so the format
// is identical on any host.

void
putU64(std::ostream &os, std::uint64_t v)
{
    char buf[8];
    for (unsigned i = 0; i < 8; ++i)
        buf[i] = static_cast<char>(v >> (8 * i));
    os.write(buf, 8);
}

void
putU32(std::ostream &os, std::uint32_t v)
{
    char buf[4];
    for (unsigned i = 0; i < 4; ++i)
        buf[i] = static_cast<char>(v >> (8 * i));
    os.write(buf, 4);
}

bool
getU64(std::istream &is, std::uint64_t &v)
{
    char buf[8];
    if (!is.read(buf, 8))
        return false;
    v = 0;
    for (unsigned i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(
                 static_cast<unsigned char>(buf[i]))
             << (8 * i);
    return true;
}

bool
getU32(std::istream &is, std::uint32_t &v)
{
    char buf[4];
    if (!is.read(buf, 4))
        return false;
    v = 0;
    for (unsigned i = 0; i < 4; ++i)
        v |= static_cast<std::uint32_t>(
                 static_cast<unsigned char>(buf[i]))
             << (8 * i);
    return true;
}

bool
pageIsZero(const std::uint8_t *p)
{
    for (std::size_t i = 0; i < MemoryImage::pageSize; ++i)
        if (p[i])
            return false;
    return true;
}

} // namespace

std::uint64_t
fingerprintProgram(const isa::Program &program)
{
    constexpr std::uint64_t fnvOffset = 0xcbf29ce484222325ull;
    constexpr std::uint64_t fnvPrime = 0x100000001b3ull;
    std::uint64_t hash = fnvOffset;
    auto mix = [&](std::uint64_t v) {
        for (unsigned b = 0; b < 8; ++b) {
            hash ^= (v >> (8 * b)) & 0xff;
            hash *= fnvPrime;
        }
    };
    for (const isa::CodeSection &sec : program.sections()) {
        mix(sec.base);
        mix(sec.code.size());
        for (const isa::Instruction &i : sec.code) {
            mix(static_cast<std::uint64_t>(i.op) |
                (std::uint64_t{i.ra} << 16) |
                (std::uint64_t{i.rb} << 24) |
                (std::uint64_t{i.rc} << 32));
            mix(static_cast<std::uint64_t>(
                static_cast<std::uint32_t>(i.imm)));
            mix(i.target);
        }
    }
    return hash;
}

bool
saveCheckpoint(const Checkpoint &c, std::ostream &os)
{
    os.write(magic, sizeof(magic));
    putU32(os, c.version);
    putU64(os, c.programFingerprint);
    putU64(os, c.instCount);
    putU64(os, c.pc);

    for (unsigned r = 0; r < isa::numRegs; ++r)
        putU64(os, c.regs.read(static_cast<RegIndex>(r)));

    putU64(os, c.warmth.size());
    for (const BranchWarmthRecord &w : c.warmth) {
        putU64(os, w.pc);
        putU64(os, w.target);
        putU32(os, (static_cast<std::uint32_t>(w.kind) << 1) |
                       (w.taken ? 1u : 0u));
    }

    putU64(os, c.memWarmth.size());
    for (const MemWarmthRecord &m : c.memWarmth) {
        putU64(os, m.addr);
        putU32(os, m.isStore ? 1u : 0u);
    }

    // All-zero pages are dropped: restoring without them is
    // architecturally identical (absent pages read as zero).
    std::vector<Addr> pages;
    for (Addr pnum : c.mem.pageNumbers())
        if (!pageIsZero(c.mem.pageData(pnum)))
            pages.push_back(pnum);
    putU64(os, pages.size());
    for (Addr pnum : pages) {
        putU64(os, pnum);
        os.write(reinterpret_cast<const char *>(c.mem.pageData(pnum)),
                 static_cast<std::streamsize>(MemoryImage::pageSize));
    }

    // v3: instruction-line warmth, appended after the page section so
    // the v2 prefix layout is unchanged.
    putU64(os, c.instWarmth.size());
    for (Addr pc : c.instWarmth)
        putU64(os, pc);
    return static_cast<bool>(os);
}

bool
saveCheckpointFile(const Checkpoint &c, const std::string &path,
                   std::string &error)
{
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    if (!os) {
        error = "cannot open '" + path + "' for writing";
        return false;
    }
    if (!saveCheckpoint(c, os) || !(os.flush())) {
        error = "write to '" + path + "' failed";
        return false;
    }
    return true;
}

std::optional<Checkpoint>
loadCheckpoint(std::istream &is, std::string &error)
{
    auto fail = [&](const std::string &msg) {
        error = msg;
        return std::nullopt;
    };

    char m[sizeof(magic)];
    if (!is.read(m, sizeof(m)) ||
        std::memcmp(m, magic, sizeof(magic)) != 0)
        return fail("not a specslice checkpoint (bad magic)");

    Checkpoint c;
    if (!getU32(is, c.version))
        return fail("truncated header");
    if (c.version < minCheckpointVersion ||
        c.version > checkpointVersion)
        return fail("unsupported checkpoint version " +
                    std::to_string(c.version) + " (supported: " +
                    std::to_string(minCheckpointVersion) + ".." +
                    std::to_string(checkpointVersion) + ")");
    if (!getU64(is, c.programFingerprint) ||
        !getU64(is, c.instCount) || !getU64(is, c.pc))
        return fail("truncated header");

    for (unsigned r = 0; r < isa::numRegs; ++r) {
        std::uint64_t v;
        if (!getU64(is, v))
            return fail("truncated register file");
        c.regs.write(static_cast<RegIndex>(r), v);
    }

    std::uint64_t warmth_count;
    if (!getU64(is, warmth_count))
        return fail("truncated warmth log");
    // A corrupt count must not drive a multi-gigabyte allocation.
    constexpr std::uint64_t maxWarmth = 1u << 24;
    if (warmth_count > maxWarmth)
        return fail("implausible warmth record count " +
                    std::to_string(warmth_count));
    c.warmth.resize(warmth_count);
    for (BranchWarmthRecord &w : c.warmth) {
        std::uint32_t flags;
        if (!getU64(is, w.pc) || !getU64(is, w.target) ||
            !getU32(is, flags))
            return fail("truncated warmth log");
        w.taken = flags & 1;
        std::uint32_t kind = flags >> 1;
        if (kind > static_cast<std::uint32_t>(WarmthKind::Indirect))
            return fail("bad warmth record kind " +
                        std::to_string(kind));
        w.kind = static_cast<WarmthKind>(kind);
    }

    std::uint64_t mem_warmth_count;
    if (!getU64(is, mem_warmth_count))
        return fail("truncated memory warmth log");
    if (mem_warmth_count > maxWarmth)
        return fail("implausible memory warmth record count " +
                    std::to_string(mem_warmth_count));
    c.memWarmth.resize(mem_warmth_count);
    for (MemWarmthRecord &m : c.memWarmth) {
        std::uint32_t flags;
        if (!getU64(is, m.addr) || !getU32(is, flags))
            return fail("truncated memory warmth log");
        if (flags > 1)
            return fail("bad memory warmth record flags " +
                        std::to_string(flags));
        m.isStore = flags != 0;
    }

    std::uint64_t page_count;
    if (!getU64(is, page_count))
        return fail("truncated page table");
    std::vector<std::uint8_t> page(MemoryImage::pageSize);
    for (std::uint64_t i = 0; i < page_count; ++i) {
        std::uint64_t pnum;
        if (!getU64(is, pnum))
            return fail("truncated page table");
        if (pnum == 0)
            return fail("checkpoint maps the null page");
        if (!is.read(reinterpret_cast<char *>(page.data()),
                     static_cast<std::streamsize>(page.size())))
            return fail("truncated page data");
        c.mem.importPage(pnum, page.data());
    }

    if (c.version >= 3) {
        std::uint64_t inst_warmth_count;
        if (!getU64(is, inst_warmth_count))
            return fail("truncated instruction warmth log");
        if (inst_warmth_count > maxWarmth)
            return fail("implausible instruction warmth record "
                        "count " +
                        std::to_string(inst_warmth_count));
        c.instWarmth.resize(inst_warmth_count);
        for (Addr &pc : c.instWarmth) {
            if (!getU64(is, pc))
                return fail("truncated instruction warmth log");
        }
    }
    return c;
}

std::optional<Checkpoint>
loadCheckpointFile(const std::string &path, std::string &error)
{
    std::ifstream is(path, std::ios::binary);
    if (!is) {
        error = "cannot open checkpoint '" + path + "'";
        return std::nullopt;
    }
    return loadCheckpoint(is, error);
}

} // namespace specslice::arch
