#include "arch/exec.hh"

#include <cstring>

#include "common/bitutils.hh"
#include "common/logging.hh"

namespace specslice::arch
{

using isa::Opcode;

namespace
{

double
asDouble(std::uint64_t bits_)
{
    double v;
    std::memcpy(&v, &bits_, sizeof(v));
    return v;
}

std::uint64_t
asBits(double v)
{
    std::uint64_t bits_;
    std::memcpy(&bits_, &v, sizeof(bits_));
    return bits_;
}

} // namespace

ExecResult
execute(const isa::Instruction &inst, Addr pc, RegFile &regs,
        MemoryImage &mem, bool allow_stores)
{
    ExecResult res;
    res.nextPc = pc + isa::instBytes;

    const std::uint64_t a = regs.read(inst.ra);
    const std::uint64_t b = regs.read(inst.rb);
    const auto sa = static_cast<std::int64_t>(a);
    const auto sb = static_cast<std::int64_t>(b);
    const std::int64_t imm = inst.imm;

    auto writeRc = [&](std::uint64_t v) {
        regs.write(inst.rc, v);
        res.value = v;
        res.wroteReg = true;
    };

    switch (inst.op) {
      // Integer ALU, register form.
      case Opcode::Add: writeRc(a + b); break;
      case Opcode::Sub: writeRc(a - b); break;
      case Opcode::And: writeRc(a & b); break;
      case Opcode::Or:  writeRc(a | b); break;
      case Opcode::Xor: writeRc(a ^ b); break;
      case Opcode::Sll: writeRc(a << (b & 63)); break;
      case Opcode::Srl: writeRc(a >> (b & 63)); break;
      case Opcode::Sra:
        writeRc(static_cast<std::uint64_t>(sa >> (b & 63)));
        break;
      case Opcode::CmpEq:  writeRc(a == b ? 1 : 0); break;
      case Opcode::CmpLt:  writeRc(sa < sb ? 1 : 0); break;
      case Opcode::CmpLe:  writeRc(sa <= sb ? 1 : 0); break;
      case Opcode::CmpUlt: writeRc(a < b ? 1 : 0); break;
      case Opcode::S4Add:  writeRc((a << 2) + b); break;
      case Opcode::S8Add:  writeRc((a << 3) + b); break;
      case Opcode::CmovEq:
        if (a == 0)
            writeRc(b);
        break;
      case Opcode::CmovNe:
        if (a != 0)
            writeRc(b);
        break;
      case Opcode::CmovLt:
        if (sa < 0)
            writeRc(b);
        break;

      // Integer ALU, immediate form.
      case Opcode::AddI: writeRc(a + imm); break;
      case Opcode::SubI: writeRc(a - imm); break;
      case Opcode::AndI: writeRc(a & static_cast<std::uint64_t>(imm)); break;
      case Opcode::OrI:  writeRc(a | static_cast<std::uint64_t>(imm)); break;
      case Opcode::XorI: writeRc(a ^ static_cast<std::uint64_t>(imm)); break;
      case Opcode::SllI: writeRc(a << (imm & 63)); break;
      case Opcode::SrlI: writeRc(a >> (imm & 63)); break;
      case Opcode::SraI:
        writeRc(static_cast<std::uint64_t>(sa >> (imm & 63)));
        break;
      case Opcode::CmpEqI:  writeRc(sa == imm ? 1 : 0); break;
      case Opcode::CmpLtI:  writeRc(sa < imm ? 1 : 0); break;
      case Opcode::CmpLeI:  writeRc(sa <= imm ? 1 : 0); break;
      case Opcode::CmpUltI:
        writeRc(a < static_cast<std::uint64_t>(imm) ? 1 : 0);
        break;
      case Opcode::Ldi: writeRc(static_cast<std::uint64_t>(imm)); break;

      // Complex integer.
      case Opcode::Mul: writeRc(a * b); break;
      case Opcode::Div:
        writeRc(sb == 0 ? 0 : static_cast<std::uint64_t>(sa / sb));
        break;

      // Floating point.
      case Opcode::FAdd: writeRc(asBits(asDouble(a) + asDouble(b))); break;
      case Opcode::FSub: writeRc(asBits(asDouble(a) - asDouble(b))); break;
      case Opcode::FMul: writeRc(asBits(asDouble(a) * asDouble(b))); break;
      case Opcode::FCmpLt: writeRc(asDouble(a) < asDouble(b) ? 1 : 0); break;
      case Opcode::FCmpLe: writeRc(asDouble(a) <= asDouble(b) ? 1 : 0); break;
      case Opcode::FCmpEq: writeRc(asDouble(a) == asDouble(b) ? 1 : 0); break;
      case Opcode::CvtIF: writeRc(asBits(static_cast<double>(sa))); break;
      case Opcode::CvtFI:
        writeRc(static_cast<std::uint64_t>(
            static_cast<std::int64_t>(asDouble(a))));
        break;

      // Memory.
      case Opcode::Ldq:
      case Opcode::Ldl:
      case Opcode::Ldbu:
      case Opcode::Prefetch: {
        Addr ea = b + static_cast<std::uint64_t>(imm);
        res.memAddr = ea;
        if (MemoryImage::faults(ea)) {
            res.fault = true;
            break;
        }
        if (inst.op == Opcode::Ldq)
            writeRc(mem.readQ(ea));
        else if (inst.op == Opcode::Ldl)
            writeRc(static_cast<std::uint64_t>(
                signExtend(mem.readL(ea), 32)));
        else if (inst.op == Opcode::Ldbu)
            writeRc(mem.readB(ea));
        // Prefetch reads no destination and never faults further.
        break;
      }
      case Opcode::Stq:
      case Opcode::Stl:
      case Opcode::Stb: {
        Addr ea = b + static_cast<std::uint64_t>(imm);
        res.memAddr = ea;
        if (!allow_stores || MemoryImage::faults(ea)) {
            res.fault = true;
            break;
        }
        if (inst.op == Opcode::Stq) {
            mem.writeQ(ea, a);
            res.value = a;
        } else if (inst.op == Opcode::Stl) {
            mem.writeL(ea, static_cast<std::uint32_t>(a));
            res.value = static_cast<std::uint32_t>(a);
        } else {
            mem.writeB(ea, static_cast<std::uint8_t>(a));
            res.value = static_cast<std::uint8_t>(a);
        }
        break;
      }

      // Control.
      case Opcode::Beq: res.taken = (sa == 0); break;
      case Opcode::Bne: res.taken = (sa != 0); break;
      case Opcode::Blt: res.taken = (sa < 0); break;
      case Opcode::Ble: res.taken = (sa <= 0); break;
      case Opcode::Bgt: res.taken = (sa > 0); break;
      case Opcode::Bge: res.taken = (sa >= 0); break;
      case Opcode::Br:  res.taken = true; break;
      case Opcode::Call:
        res.taken = true;
        writeRc(pc + isa::instBytes);
        break;
      case Opcode::Jmp:
        res.taken = true;
        res.nextPc = a;
        break;
      case Opcode::CallR:
        res.taken = true;
        res.nextPc = b;
        writeRc(pc + isa::instBytes);
        break;
      case Opcode::Ret:
        res.taken = true;
        res.nextPc = a;
        break;

      // Misc.
      case Opcode::Nop: break;
      case Opcode::Halt: res.halted = true; break;
      case Opcode::SliceEnd: res.sliceEnded = true; break;

      default:
        SS_PANIC("unimplemented opcode ",
                 static_cast<unsigned>(inst.op));
    }

    if (res.taken && inst.hasStaticTarget())
        res.nextPc = inst.target;

    return res;
}

} // namespace specslice::arch
