#include "arch/fastfwd.hh"

#include <algorithm>
#include <cstring>
#include <iterator>

#include "arch/exec.hh"
#include "common/bitutils.hh"
#include "common/logging.hh"

namespace specslice::arch
{

using isa::Opcode;

namespace
{

double
asDouble(std::uint64_t bits_)
{
    double v;
    std::memcpy(&v, &bits_, sizeof(v));
    return v;
}

std::uint64_t
asBits(double v)
{
    std::uint64_t bits_;
    std::memcpy(&bits_, &v, sizeof(bits_));
    return bits_;
}

} // namespace

const char *
ffStopName(FfStop stop)
{
    switch (stop) {
      case FfStop::Budget:
        return "budget";
      case FfStop::Halted:
        return "halted";
      case FfStop::Fault:
        return "fault";
      case FfStop::UnmappedPc:
        return "unmapped_pc";
    }
    return "unknown";
}

FastForward::FastForward(const isa::Program &program)
    : program_(program), fingerprint_(fingerprintProgram(program)),
      warmthRing_(warmthDepth), memRing_(memWarmthDepth),
      instRing_(instWarmthDepth)
{
    predecode();
}

void
FastForward::predecode()
{
    const auto &secs = program_.sections();
    if (secs.empty())
        return;
    Addr lo = secs.front().base;
    Addr hi = 0;
    for (const isa::CodeSection &s : secs)
        hi = std::max(hi, s.end());
    const Addr span = (hi - lo) / isa::instBytes;
    if (span > isa::Program::flatIndexLimit)
        return;  // sparse layout; runSparse() takes over

    decodeBase_ = lo;
    Decoded gap;
    gap.op = invalidOp;
    // One sentinel gap entry past the end so falling through the last
    // instruction lands on a decodable "unmapped" slot.
    ops_.assign(static_cast<std::size_t>(span) + 1, gap);

    for (const isa::CodeSection &s : secs) {
        std::uint32_t idx =
            static_cast<std::uint32_t>((s.base - lo) / isa::instBytes);
        for (const isa::Instruction &inst : s.code) {
            Decoded d;
            d.imm = inst.imm;
            d.op = static_cast<std::uint16_t>(inst.op);
            d.ra = inst.ra;
            d.rb = inst.rb;
            d.rc = inst.rc;
            // Taken-path index. exec.cc only redirects to the static
            // target when one exists; a taken transfer without one
            // falls through, so that is the precomputed default.
            d.targetIdx = idx + 1;
            if (inst.hasStaticTarget())
                d.targetIdx = idxOf(inst.target);  // badIdx if outside
            ops_[idx] = d;
            ++idx;
        }
    }
}

std::uint32_t
FastForward::idxOf(Addr pc) const
{
    if (ops_.empty())
        return badIdx;
    const Addr off = pc - decodeBase_;  // wraps huge below decodeBase_
    if (off >= (ops_.size() - 1) * isa::instBytes ||
        off % isa::instBytes != 0)
        return badIdx;
    return static_cast<std::uint32_t>(off / isa::instBytes);
}

Addr
FastForward::pcOf(std::uint32_t idx) const
{
    return decodeBase_ + Addr{idx} * isa::instBytes;
}

void
FastForward::reset(Addr entry_pc)
{
    regs_.reset();
    mem_ = MemoryImage{};
    pc_ = entry_pc;
    executed_ = 0;
    last_ = FfStop::Budget;
    warmthCount_ = 0;
    memCount_ = 0;
    instCount_ = 0;
    lastInstLine_ = invalidAddr;
}

FfStop
FastForward::advance(std::uint64_t max_insts)
{
    if (!runnable())
        return last_;  // sticky: halted/faulted/unmapped stays stopped
    return ops_.empty() ? runSparse(max_insts) : run(max_insts);
}

FfStop
FastForward::advanceTo(std::uint64_t target_count)
{
    if (target_count <= executed_)
        return last_;
    return advance(target_count - executed_);
}

void
FastForward::recordCond(Addr pc, bool taken)
{
    BranchWarmthRecord &w =
        warmthRing_[warmthCount_++ & (warmthDepth - 1)];
    w.pc = pc;
    w.target = invalidAddr;
    w.kind = WarmthKind::CondBranch;
    w.taken = taken;
}

void
FastForward::recordIndirect(Addr pc, Addr target)
{
    BranchWarmthRecord &w =
        warmthRing_[warmthCount_++ & (warmthDepth - 1)];
    w.pc = pc;
    w.target = target;
    w.kind = WarmthKind::Indirect;
    w.taken = false;
}

std::vector<BranchWarmthRecord>
FastForward::warmth() const
{
    const std::uint64_t cnt =
        std::min<std::uint64_t>(warmthCount_, warmthDepth);
    std::vector<BranchWarmthRecord> out;
    out.reserve(cnt);
    for (std::uint64_t i = warmthCount_ - cnt; i < warmthCount_; ++i)
        out.push_back(warmthRing_[i & (warmthDepth - 1)]);
    return out;
}

std::vector<MemWarmthRecord>
FastForward::memWarmth() const
{
    const std::uint64_t cnt =
        std::min<std::uint64_t>(memCount_, memWarmthDepth);
    std::vector<MemWarmthRecord> out;
    out.reserve(cnt);
    for (std::uint64_t i = memCount_ - cnt; i < memCount_; ++i)
        out.push_back(memRing_[i & (memWarmthDepth - 1)]);
    return out;
}

std::vector<Addr>
FastForward::instWarmth() const
{
    const std::uint64_t cnt =
        std::min<std::uint64_t>(instCount_, instWarmthDepth);
    std::vector<Addr> out;
    out.reserve(cnt);
    for (std::uint64_t i = instCount_ - cnt; i < instCount_; ++i)
        out.push_back(instRing_[i & (instWarmthDepth - 1)]);
    return out;
}

Checkpoint
FastForward::makeCheckpoint() const
{
    Checkpoint c;
    c.programFingerprint = fingerprint_;
    c.instCount = executed_;
    c.pc = pc_;
    c.regs = regs_;
    c.warmth = warmth();
    c.memWarmth = memWarmth();
    c.instWarmth = instWarmth();
    c.mem = mem_.clone();
    return c;
}

void
FastForward::restore(const Checkpoint &ckpt)
{
    if (ckpt.programFingerprint != fingerprint_)
        SS_FATAL("checkpoint/program mismatch: checkpoint fingerprint ",
                 ckpt.programFingerprint, " vs program ", fingerprint_,
                 " (wrong workload, scale, or seed?)");
    regs_ = ckpt.regs;
    mem_ = ckpt.mem.clone();
    pc_ = ckpt.pc;
    executed_ = ckpt.instCount;
    last_ = FfStop::Budget;
    warmthCount_ = 0;
    for (const BranchWarmthRecord &w : ckpt.warmth)
        warmthRing_[warmthCount_++ & (warmthDepth - 1)] = w;
    memCount_ = 0;
    for (const MemWarmthRecord &m : ckpt.memWarmth)
        memRing_[memCount_++ & (memWarmthDepth - 1)] = m;
    instCount_ = 0;
    lastInstLine_ = invalidAddr;
    for (Addr pc : ckpt.instWarmth)
        recordInstLine(pc);
}

/*
 * The interpreter core. One handler per opcode, written once and
 * compiled either as direct-threaded code (GNU computed goto: each
 * handler ends in its own indirect jump, so the branch predictor
 * learns per-handler successor patterns) or as a switch in a loop on
 * other compilers. Semantics mirror arch::execute case by case; the
 * test suite locks the two together by comparing final state against
 * arch::trace on every workload.
 *
 * Counting follows Tracer rules exactly: a halting or faulting
 * instruction is counted, the instruction at an unmapped PC is not,
 * and the budget is checked before each fetch, so a budget stop at an
 * unmapped next-PC reports Budget (the tracer never fetched either).
 */

#if defined(__GNUC__) || defined(__clang__)
#define SS_FF_THREADED 1
#else
#define SS_FF_THREADED 0
#endif

// Terminate this advance: bank the instruction count, remember where
// and why, and make the reason sticky (Budget re-arms via advance()).
#define SS_FF_STOP(why, at)                                           \
    do {                                                              \
        executed_ += n;                                               \
        pc_ = (at);                                                   \
        last_ = (why);                                                \
        return (why);                                                 \
    } while (0)

#if SS_FF_THREADED
#define SS_FF_CASE(name) ff_##name:
#define SS_FF_GAP ff_Gap:
#define SS_FF_NEXT()                                                  \
    do {                                                              \
        if (n >= max_insts)                                           \
            SS_FF_STOP(FfStop::Budget, pcOf(idx));                    \
        recordInstLine(pcOf(idx));                                    \
        goto *jumpTable[code[idx].op];                                \
    } while (0)
#else
#define SS_FF_CASE(name) case Opcode::name:
#define SS_FF_GAP default:
#define SS_FF_NEXT() goto dispatch
#endif

// exec.cc's operand shorthands, against the pre-decoded record.
#define D code[idx]
#define RA regs.read(D.ra)
#define RB regs.read(D.rb)
#define SA static_cast<std::int64_t>(RA)
#define SB static_cast<std::int64_t>(RB)
#define SIMM static_cast<std::int64_t>(D.imm)
#define UIMM static_cast<std::uint64_t>(SIMM)
#define WR(v) regs.write(D.rc, (v))
#define STEP()                                                        \
    do {                                                              \
        ++idx;                                                        \
        ++n;                                                          \
        SS_FF_NEXT();                                                 \
    } while (0)

// Redirect to a precomputed taken-path index; badIdx means the static
// target lies outside the decode array, i.e. off the program image.
#define TAKE(tidx)                                                    \
    do {                                                              \
        std::uint32_t t_ = (tidx);                                    \
        ++n;                                                          \
        if (t_ == badIdx) {                                           \
            Addr tgt_ = staticTargetOf(idx);                          \
            if (n >= max_insts)                                       \
                SS_FF_STOP(FfStop::Budget, tgt_);                     \
            SS_FF_STOP(FfStop::UnmappedPc, tgt_);                     \
        }                                                             \
        idx = t_;                                                     \
        SS_FF_NEXT();                                                 \
    } while (0)

#define CBR(cond)                                                     \
    {                                                                 \
        const bool taken_ = (cond);                                   \
        recordCond(pcOf(idx), taken_);                                \
        TAKE(taken_ ? D.targetIdx : idx + 1);                         \
    }

// Indirect transfer to a runtime address.
#define GOIND(next)                                                   \
    do {                                                              \
        const Addr next_ = (next);                                    \
        recordIndirect(pcOf(idx), next_);                             \
        ++n;                                                          \
        const std::uint32_t t_ = idxOf(next_);                        \
        if (t_ == badIdx) {                                           \
            if (n >= max_insts)                                       \
                SS_FF_STOP(FfStop::Budget, next_);                    \
            SS_FF_STOP(FfStop::UnmappedPc, next_);                    \
        }                                                             \
        idx = t_;                                                     \
        SS_FF_NEXT();                                                 \
    } while (0)

#define EA (RB + UIMM)
#define LOADFAULT(ea)                                                 \
    if (MemoryImage::faults(ea)) {                                    \
        ++n;                                                          \
        SS_FF_STOP(FfStop::Fault, pcOf(idx));                         \
    }

FfStop
FastForward::run(std::uint64_t max_insts)
{
    RegFile &regs = regs_;
    MemoryImage &mem = mem_;
    const Decoded *const code = ops_.data();
    std::uint64_t n = 0;
    std::uint32_t idx = idxOf(pc_);

    if (idx == badIdx) {
        // Already off the image (e.g. a checkpoint taken mid-stop).
        if (max_insts == 0)
            SS_FF_STOP(FfStop::Budget, pc_);
        SS_FF_STOP(FfStop::UnmappedPc, pc_);
    }

#if SS_FF_THREADED
    // Must match the isa::Opcode declaration order exactly; the
    // static_assert below pins the enum so silent drift is impossible.
    static const void *const jumpTable[] = {
        &&ff_Add, &&ff_Sub, &&ff_And, &&ff_Or, &&ff_Xor,
        &&ff_Sll, &&ff_Srl, &&ff_Sra,
        &&ff_CmpEq, &&ff_CmpLt, &&ff_CmpLe, &&ff_CmpUlt,
        &&ff_S4Add, &&ff_S8Add,
        &&ff_CmovEq, &&ff_CmovNe, &&ff_CmovLt,
        &&ff_AddI, &&ff_SubI, &&ff_AndI, &&ff_OrI, &&ff_XorI,
        &&ff_SllI, &&ff_SrlI, &&ff_SraI,
        &&ff_CmpEqI, &&ff_CmpLtI, &&ff_CmpLeI, &&ff_CmpUltI,
        &&ff_Ldi,
        &&ff_Mul, &&ff_Div,
        &&ff_FAdd, &&ff_FSub, &&ff_FMul,
        &&ff_FCmpLt, &&ff_FCmpLe, &&ff_FCmpEq,
        &&ff_CvtIF, &&ff_CvtFI,
        &&ff_Ldq, &&ff_Ldl, &&ff_Ldbu,
        &&ff_Stq, &&ff_Stl, &&ff_Stb, &&ff_Prefetch,
        &&ff_Beq, &&ff_Bne, &&ff_Blt, &&ff_Ble, &&ff_Bgt, &&ff_Bge,
        &&ff_Br, &&ff_Call, &&ff_Jmp, &&ff_CallR, &&ff_Ret,
        &&ff_Nop, &&ff_Halt, &&ff_SliceEnd,
        &&ff_Gap,
    };
    static_assert(static_cast<unsigned>(Opcode::NumOpcodes) == 61,
                  "opcode added/removed: update fastfwd jump table");
    static_assert(std::size(jumpTable) ==
                  static_cast<std::size_t>(Opcode::NumOpcodes) + 1);

    SS_FF_NEXT();
#else
  dispatch:
    if (n >= max_insts)
        SS_FF_STOP(FfStop::Budget, pcOf(idx));
    recordInstLine(pcOf(idx));
    switch (static_cast<Opcode>(code[idx].op))
#endif
    {
        // Integer ALU, register form.
        SS_FF_CASE(Add) { WR(RA + RB); STEP(); }
        SS_FF_CASE(Sub) { WR(RA - RB); STEP(); }
        SS_FF_CASE(And) { WR(RA & RB); STEP(); }
        SS_FF_CASE(Or)  { WR(RA | RB); STEP(); }
        SS_FF_CASE(Xor) { WR(RA ^ RB); STEP(); }
        SS_FF_CASE(Sll) { WR(RA << (RB & 63)); STEP(); }
        SS_FF_CASE(Srl) { WR(RA >> (RB & 63)); STEP(); }
        SS_FF_CASE(Sra)
        {
            WR(static_cast<std::uint64_t>(SA >> (RB & 63)));
            STEP();
        }
        SS_FF_CASE(CmpEq)  { WR(RA == RB ? 1 : 0); STEP(); }
        SS_FF_CASE(CmpLt)  { WR(SA < SB ? 1 : 0); STEP(); }
        SS_FF_CASE(CmpLe)  { WR(SA <= SB ? 1 : 0); STEP(); }
        SS_FF_CASE(CmpUlt) { WR(RA < RB ? 1 : 0); STEP(); }
        SS_FF_CASE(S4Add)  { WR((RA << 2) + RB); STEP(); }
        SS_FF_CASE(S8Add)  { WR((RA << 3) + RB); STEP(); }
        SS_FF_CASE(CmovEq)
        {
            if (RA == 0)
                WR(RB);
            STEP();
        }
        SS_FF_CASE(CmovNe)
        {
            if (RA != 0)
                WR(RB);
            STEP();
        }
        SS_FF_CASE(CmovLt)
        {
            if (SA < 0)
                WR(RB);
            STEP();
        }

        // Integer ALU, immediate form.
        SS_FF_CASE(AddI) { WR(RA + SIMM); STEP(); }
        SS_FF_CASE(SubI) { WR(RA - SIMM); STEP(); }
        SS_FF_CASE(AndI) { WR(RA & UIMM); STEP(); }
        SS_FF_CASE(OrI)  { WR(RA | UIMM); STEP(); }
        SS_FF_CASE(XorI) { WR(RA ^ UIMM); STEP(); }
        SS_FF_CASE(SllI) { WR(RA << (SIMM & 63)); STEP(); }
        SS_FF_CASE(SrlI) { WR(RA >> (SIMM & 63)); STEP(); }
        SS_FF_CASE(SraI)
        {
            WR(static_cast<std::uint64_t>(SA >> (SIMM & 63)));
            STEP();
        }
        SS_FF_CASE(CmpEqI)  { WR(SA == SIMM ? 1 : 0); STEP(); }
        SS_FF_CASE(CmpLtI)  { WR(SA < SIMM ? 1 : 0); STEP(); }
        SS_FF_CASE(CmpLeI)  { WR(SA <= SIMM ? 1 : 0); STEP(); }
        SS_FF_CASE(CmpUltI) { WR(RA < UIMM ? 1 : 0); STEP(); }
        SS_FF_CASE(Ldi)     { WR(UIMM); STEP(); }

        // Complex integer.
        SS_FF_CASE(Mul) { WR(RA * RB); STEP(); }
        SS_FF_CASE(Div)
        {
            const std::int64_t sb = SB;
            WR(sb == 0 ? 0 : static_cast<std::uint64_t>(SA / sb));
            STEP();
        }

        // Floating point.
        SS_FF_CASE(FAdd)
        {
            WR(asBits(asDouble(RA) + asDouble(RB)));
            STEP();
        }
        SS_FF_CASE(FSub)
        {
            WR(asBits(asDouble(RA) - asDouble(RB)));
            STEP();
        }
        SS_FF_CASE(FMul)
        {
            WR(asBits(asDouble(RA) * asDouble(RB)));
            STEP();
        }
        SS_FF_CASE(FCmpLt)
        {
            WR(asDouble(RA) < asDouble(RB) ? 1 : 0);
            STEP();
        }
        SS_FF_CASE(FCmpLe)
        {
            WR(asDouble(RA) <= asDouble(RB) ? 1 : 0);
            STEP();
        }
        SS_FF_CASE(FCmpEq)
        {
            WR(asDouble(RA) == asDouble(RB) ? 1 : 0);
            STEP();
        }
        SS_FF_CASE(CvtIF)
        {
            WR(asBits(static_cast<double>(SA)));
            STEP();
        }
        SS_FF_CASE(CvtFI)
        {
            WR(static_cast<std::uint64_t>(
                static_cast<std::int64_t>(asDouble(RA))));
            STEP();
        }

        // Memory.
        SS_FF_CASE(Ldq)
        {
            const Addr ea = EA;
            LOADFAULT(ea);
            recordMem(ea, false);
            WR(mem.readQ(ea));
            STEP();
        }
        SS_FF_CASE(Ldl)
        {
            const Addr ea = EA;
            LOADFAULT(ea);
            recordMem(ea, false);
            WR(static_cast<std::uint64_t>(
                signExtend(mem.readL(ea), 32)));
            STEP();
        }
        SS_FF_CASE(Ldbu)
        {
            const Addr ea = EA;
            LOADFAULT(ea);
            recordMem(ea, false);
            WR(mem.readB(ea));
            STEP();
        }
        SS_FF_CASE(Prefetch)
        {
            // Like exec.cc: the null-page check still applies, the
            // access itself is dropped — and the line it names would
            // land in the cache, so it warms like a load.
            const Addr ea = EA;
            LOADFAULT(ea);
            recordMem(ea, false);
            STEP();
        }
        SS_FF_CASE(Stq)
        {
            const Addr ea = EA;
            LOADFAULT(ea);
            recordMem(ea, true);
            mem.writeQ(ea, RA);
            STEP();
        }
        SS_FF_CASE(Stl)
        {
            const Addr ea = EA;
            LOADFAULT(ea);
            recordMem(ea, true);
            mem.writeL(ea, static_cast<std::uint32_t>(RA));
            STEP();
        }
        SS_FF_CASE(Stb)
        {
            const Addr ea = EA;
            LOADFAULT(ea);
            recordMem(ea, true);
            mem.writeB(ea, static_cast<std::uint8_t>(RA));
            STEP();
        }

        // Control.
        SS_FF_CASE(Beq) CBR(SA == 0)
        SS_FF_CASE(Bne) CBR(SA != 0)
        SS_FF_CASE(Blt) CBR(SA < 0)
        SS_FF_CASE(Ble) CBR(SA <= 0)
        SS_FF_CASE(Bgt) CBR(SA > 0)
        SS_FF_CASE(Bge) CBR(SA >= 0)
        SS_FF_CASE(Br)  { TAKE(D.targetIdx); }
        SS_FF_CASE(Call)
        {
            WR(pcOf(idx) + isa::instBytes);
            TAKE(D.targetIdx);
        }
        SS_FF_CASE(Jmp) { GOIND(RA); }
        SS_FF_CASE(CallR)
        {
            // Read the target before the link write: rc may alias rb.
            const Addr next = RB;
            WR(pcOf(idx) + isa::instBytes);
            GOIND(next);
        }
        SS_FF_CASE(Ret) { GOIND(RA); }

        // Misc.
        SS_FF_CASE(Nop) { STEP(); }
        SS_FF_CASE(Halt)
        {
            ++n;
            SS_FF_STOP(FfStop::Halted, pcOf(idx));
        }
        SS_FF_CASE(SliceEnd)
        {
            // In the main architectural stream a SliceEnd is inert
            // (only helper threads terminate on it) — fall through,
            // exactly as the Tracer does.
            STEP();
        }

        SS_FF_GAP
        {
            // Inter-section gap or the end sentinel: this PC holds no
            // instruction, so it is not counted (Tracer fetch failure).
            SS_FF_STOP(FfStop::UnmappedPc, pcOf(idx));
        }
    }
#if !SS_FF_THREADED
    SS_PANIC("fastfwd dispatch fell through");
#endif
}

#undef SS_FF_STOP
#undef SS_FF_CASE
#undef SS_FF_GAP
#undef SS_FF_NEXT
#undef D
#undef RA
#undef RB
#undef SA
#undef SB
#undef SIMM
#undef UIMM
#undef WR
#undef STEP
#undef TAKE
#undef CBR
#undef GOIND
#undef EA
#undef LOADFAULT

Addr
FastForward::staticTargetOf(std::uint32_t idx) const
{
    const isa::Instruction *inst = program_.fetch(pcOf(idx));
    SS_ASSERT(inst, "staticTargetOf on a gap slot");
    return inst->target;
}

FfStop
FastForward::runSparse(std::uint64_t max_insts)
{
    // Program span too wide for the decode array: fall back to the
    // Tracer's fetch/execute pair. Identical semantics, just slower.
    std::uint64_t n = 0;
    while (n < max_insts) {
        const isa::Instruction *inst = program_.fetch(pc_);
        if (!inst) {
            executed_ += n;
            last_ = FfStop::UnmappedPc;
            return last_;
        }
        const ExecResult res = execute(*inst, pc_, regs_, mem_, true);
        ++n;
        recordInstLine(pc_);
        if (inst->isCondBranch())
            recordCond(pc_, res.taken);
        else if (inst->traits().isIndirect)
            recordIndirect(pc_, res.nextPc);
        if (res.memAddr != invalidAddr && !res.fault)
            recordMem(res.memAddr, inst->isStore());
        if (res.halted) {
            executed_ += n;
            last_ = FfStop::Halted;
            return last_;
        }
        if (res.fault) {
            executed_ += n;
            last_ = FfStop::Fault;
            return last_;
        }
        pc_ = res.nextPc;
    }
    executed_ += n;
    last_ = FfStop::Budget;
    return last_;
}

} // namespace specslice::arch
