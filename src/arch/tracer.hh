/**
 * @file
 * A functional (timing-free) tracer: executes a program architecturally
 * and hands every retired instruction to a callback. This is the
 * substrate for trace-driven analyses — most importantly the automatic
 * slice-candidate analysis of Section 3.3 (which follows Roth & Sohi's
 * approach of selecting slices from an execution trace).
 */

#ifndef SPECSLICE_ARCH_TRACER_HH
#define SPECSLICE_ARCH_TRACER_HH

#include <functional>

#include "arch/exec.hh"
#include "arch/memimg.hh"
#include "arch/regfile.hh"
#include "common/types.hh"
#include "isa/program.hh"

namespace specslice::arch
{

/** One traced dynamic instruction. */
struct TraceEvent
{
    Addr pc = invalidAddr;
    const isa::Instruction *inst = nullptr;
    ExecResult result;
};

/**
 * Why a functional execution stopped. Callers used to infer this from
 * the instruction count alone, which cannot distinguish a program that
 * halted exactly at the budget from one that was cut off by it.
 */
enum class TraceStop
{
    MaxInsts,    ///< instruction budget exhausted, program still live
    Halted,      ///< executed a Halt
    Fault,       ///< architectural fault (e.g. null-page access)
    UnmappedPc,  ///< control flow left the program image
};

/** Stable lower-case name for diagnostics. */
const char *traceStopName(TraceStop stop);

/** How a functional execution ended. */
struct TraceResult
{
    std::uint64_t count = 0;          ///< instructions executed
    TraceStop reason = TraceStop::MaxInsts;
    /**
     * The next PC the program would execute (MaxInsts/UnmappedPc), or
     * the PC of the halting/faulting instruction itself.
     */
    Addr finalPc = invalidAddr;
};

/**
 * Functionally execute program from entry_pc, invoking on_event per
 * instruction, until Halt, a fault, an unmapped PC, or max_insts.
 */
TraceResult trace(const isa::Program &program, Addr entry_pc,
                  MemoryImage &mem, std::uint64_t max_insts,
                  const std::function<void(const TraceEvent &)> &
                      on_event);

/** As above, but stepping a caller-owned register file (so the final
 *  architectural state is inspectable after the run). */
TraceResult trace(const isa::Program &program, Addr entry_pc,
                  RegFile &regs, MemoryImage &mem,
                  std::uint64_t max_insts,
                  const std::function<void(const TraceEvent &)> &
                      on_event);

} // namespace specslice::arch

#endif // SPECSLICE_ARCH_TRACER_HH
