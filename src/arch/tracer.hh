/**
 * @file
 * A functional (timing-free) tracer: executes a program architecturally
 * and hands every retired instruction to a callback. This is the
 * substrate for trace-driven analyses — most importantly the automatic
 * slice-candidate analysis of Section 3.3 (which follows Roth & Sohi's
 * approach of selecting slices from an execution trace).
 */

#ifndef SPECSLICE_ARCH_TRACER_HH
#define SPECSLICE_ARCH_TRACER_HH

#include <functional>

#include "arch/exec.hh"
#include "arch/memimg.hh"
#include "arch/regfile.hh"
#include "common/types.hh"
#include "isa/program.hh"

namespace specslice::arch
{

/** One traced dynamic instruction. */
struct TraceEvent
{
    Addr pc = invalidAddr;
    const isa::Instruction *inst = nullptr;
    ExecResult result;
};

/**
 * Functionally execute program from entry_pc, invoking on_event per
 * instruction, until Halt, a fault, an unmapped PC, or max_insts.
 *
 * @return the number of instructions executed.
 */
std::uint64_t trace(const isa::Program &program, Addr entry_pc,
                    MemoryImage &mem, std::uint64_t max_insts,
                    const std::function<void(const TraceEvent &)> &
                        on_event);

} // namespace specslice::arch

#endif // SPECSLICE_ARCH_TRACER_HH
