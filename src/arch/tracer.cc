#include "arch/tracer.hh"

#include "common/logging.hh"

namespace specslice::arch
{

std::uint64_t
trace(const isa::Program &program, Addr entry_pc, MemoryImage &mem,
      std::uint64_t max_insts,
      const std::function<void(const TraceEvent &)> &on_event)
{
    RegFile regs;
    Addr pc = entry_pc;
    std::uint64_t count = 0;

    while (count < max_insts) {
        const isa::Instruction *inst = program.fetch(pc);
        if (!inst)
            break;

        TraceEvent ev;
        ev.pc = pc;
        ev.inst = inst;
        ev.result = execute(*inst, pc, regs, mem, true);
        ++count;
        on_event(ev);

        if (ev.result.halted || ev.result.fault)
            break;
        pc = ev.result.nextPc;
    }
    return count;
}

} // namespace specslice::arch
