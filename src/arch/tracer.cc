#include "arch/tracer.hh"

#include "common/logging.hh"

namespace specslice::arch
{

const char *
traceStopName(TraceStop stop)
{
    switch (stop) {
      case TraceStop::MaxInsts:
        return "max_insts";
      case TraceStop::Halted:
        return "halted";
      case TraceStop::Fault:
        return "fault";
      case TraceStop::UnmappedPc:
        return "unmapped_pc";
    }
    return "unknown";
}

TraceResult
trace(const isa::Program &program, Addr entry_pc, RegFile &regs,
      MemoryImage &mem, std::uint64_t max_insts,
      const std::function<void(const TraceEvent &)> &on_event)
{
    Addr pc = entry_pc;
    TraceResult res;

    while (res.count < max_insts) {
        const isa::Instruction *inst = program.fetch(pc);
        if (!inst) {
            res.reason = TraceStop::UnmappedPc;
            res.finalPc = pc;
            return res;
        }

        TraceEvent ev;
        ev.pc = pc;
        ev.inst = inst;
        ev.result = execute(*inst, pc, regs, mem, true);
        ++res.count;
        on_event(ev);

        if (ev.result.halted) {
            res.reason = TraceStop::Halted;
            res.finalPc = pc;
            return res;
        }
        if (ev.result.fault) {
            res.reason = TraceStop::Fault;
            res.finalPc = pc;
            return res;
        }
        pc = ev.result.nextPc;
    }
    res.reason = TraceStop::MaxInsts;
    res.finalPc = pc;
    return res;
}

TraceResult
trace(const isa::Program &program, Addr entry_pc, MemoryImage &mem,
      std::uint64_t max_insts,
      const std::function<void(const TraceEvent &)> &on_event)
{
    RegFile regs;
    return trace(program, entry_pc, regs, mem, max_insts, on_event);
}

} // namespace specslice::arch
