#include "arch/memimg.hh"

#include <algorithm>
#include <cstring>

#include "common/logging.hh"

namespace specslice::arch
{

const MemoryImage::Page *
MemoryImage::findPage(Addr addr) const
{
    Addr pnum = addr >> pageShift;
    if (pnum == cachedPageNum_)
        return cachedPage_;
    auto it = pages_.find(pnum);
    if (it == pages_.end())
        return nullptr;
    cachedPageNum_ = pnum;
    cachedPage_ = it->second.get();
    return cachedPage_;
}

MemoryImage::Page &
MemoryImage::touchPage(Addr addr)
{
    Addr pnum = addr >> pageShift;
    if (pnum == cachedPageNum_)
        return *cachedPage_;
    auto &slot = pages_[pnum];
    if (!slot) {
        slot = std::make_unique<Page>();
        slot->fill(0);
    }
    cachedPageNum_ = pnum;
    cachedPage_ = slot.get();
    return *slot;
}

std::uint64_t
MemoryImage::read(Addr addr, unsigned n) const
{
    SS_ASSERT(n == 1 || n == 2 || n == 4 || n == 8, "bad access size");
    std::uint64_t value = 0;
    std::size_t off = addr & (pageSize - 1);
    if (off + n <= pageSize) {
        // Whole access within one page: a single lookup.
        const Page *p = findPage(addr);
        if (!p)
            return 0;
        for (unsigned i = 0; i < n; ++i)
            value |= static_cast<std::uint64_t>((*p)[off + i]) << (8 * i);
        return value;
    }
    // Page-straddling access: per-byte fallback.
    for (unsigned i = 0; i < n; ++i) {
        Addr a = addr + i;
        const Page *p = findPage(a);
        std::uint8_t byte = p ? (*p)[a & (pageSize - 1)] : 0;
        value |= static_cast<std::uint64_t>(byte) << (8 * i);
    }
    return value;
}

void
MemoryImage::write(Addr addr, std::uint64_t value, unsigned n)
{
    SS_ASSERT(n == 1 || n == 2 || n == 4 || n == 8, "bad access size");
    SS_ASSERT(!faults(addr), "functional write to the null page");
    std::size_t off = addr & (pageSize - 1);
    if (off + n <= pageSize) {
        Page &p = touchPage(addr);
        for (unsigned i = 0; i < n; ++i)
            p[off + i] = static_cast<std::uint8_t>(value >> (8 * i));
        return;
    }
    for (unsigned i = 0; i < n; ++i) {
        Addr a = addr + i;
        touchPage(a)[a & (pageSize - 1)] =
            static_cast<std::uint8_t>(value >> (8 * i));
    }
}

MemoryImage
MemoryImage::clone() const
{
    MemoryImage copy;
    copy.pages_.reserve(pages_.size());
    for (const auto &[pnum, page] : pages_)
        copy.pages_.emplace(pnum, std::make_unique<Page>(*page));
    return copy;
}

std::vector<Addr>
MemoryImage::pageNumbers() const
{
    std::vector<Addr> nums;
    nums.reserve(pages_.size());
    for (const auto &[pnum, page] : pages_)
        nums.push_back(pnum);
    std::sort(nums.begin(), nums.end());
    return nums;
}

const std::uint8_t *
MemoryImage::pageData(Addr page_num) const
{
    auto it = pages_.find(page_num);
    return it != pages_.end() ? it->second->data() : nullptr;
}

void
MemoryImage::importPage(Addr page_num, const std::uint8_t *data)
{
    SS_ASSERT(page_num != 0, "cannot map the null page");
    auto &slot = pages_[page_num];
    if (!slot)
        slot = std::make_unique<Page>();
    std::memcpy(slot->data(), data, pageSize);
    // The translation cache may point at a page this import replaced.
    cachedPageNum_ = ~Addr{0};
    cachedPage_ = nullptr;
}

std::uint64_t
MemoryImage::contentHash() const
{
    constexpr std::uint64_t fnvOffset = 0xcbf29ce484222325ull;
    constexpr std::uint64_t fnvPrime = 0x100000001b3ull;
    std::uint64_t hash = fnvOffset;
    for (Addr pnum : pageNumbers()) {
        const std::uint8_t *p = pageData(pnum);
        bool all_zero = true;
        for (std::size_t i = 0; i < pageSize; ++i) {
            if (p[i]) {
                all_zero = false;
                break;
            }
        }
        if (all_zero)
            continue;
        for (unsigned b = 0; b < 8; ++b) {
            hash ^= (pnum >> (8 * b)) & 0xff;
            hash *= fnvPrime;
        }
        for (std::size_t i = 0; i < pageSize; ++i) {
            hash ^= p[i];
            hash *= fnvPrime;
        }
    }
    return hash;
}

void
MemoryImage::writeF(Addr addr, double v)
{
    std::uint64_t bits_;
    std::memcpy(&bits_, &v, sizeof(bits_));
    writeQ(addr, bits_);
}

double
MemoryImage::readF(Addr addr) const
{
    std::uint64_t bits_ = readQ(addr);
    double v;
    std::memcpy(&v, &bits_, sizeof(v));
    return v;
}

} // namespace specslice::arch
